"""Hand-written "custom reducer" implementations of the BT stages.

This module is the Figure 14 comparator: the same computations as the
declarative temporal queries, coded directly against sorted row lists
with bespoke window bookkeeping — the style of a hand-optimized reducer.
It is deliberately imperative. Note everything the queries gave us for
free that must be re-derived by hand here: hopping-window membership
(`(b - w, b]` with `b = floor(t/h)*h`), the click-horizon anti-join, the
sliding-window profile counts, and their tie-breaking at boundaries.
None of it is reusable for other queries, and none of it can run over a
live feed.

The outputs are bit-compatible with the query implementations — tests
assert equality — which is exactly the property the paper exploited to
compare the two approaches fairly.
"""

from __future__ import annotations

import inspect
from bisect import bisect_left, bisect_right
from typing import Dict, List, Tuple

from ..schema import CLICK, IMPRESSION, KEYWORD, BTConfig
from ..ztest import keyword_z_score


def custom_bot_elimination(rows: List[dict], cfg: BTConfig) -> List[dict]:
    """Drop events of users exceeding windowed click/search thresholds.

    Equivalent to the BotElim CQ (Figure 11): at any instant t, the
    relevant hop boundary is b = floor(t / hop) * hop and the bot test
    counts the user's clicks/searches in (b - w, b].
    """
    clicks_by_user: Dict[str, List[int]] = {}
    searches_by_user: Dict[str, List[int]] = {}
    for row in rows:
        if row["StreamId"] == CLICK:
            clicks_by_user.setdefault(row["UserId"], []).append(row["Time"])
        elif row["StreamId"] == KEYWORD:
            searches_by_user.setdefault(row["UserId"], []).append(row["Time"])
    for times in clicks_by_user.values():
        times.sort()
    for times in searches_by_user.values():
        times.sort()

    h = cfg.bot_hop
    w = cfg.bot_window

    def window_count(times: List[int], boundary: int) -> int:
        lo = bisect_right(times, boundary - w)
        hi = bisect_right(times, boundary)
        return hi - lo

    out = []
    for row in rows:
        user = row["UserId"]
        boundary = (row["Time"] // h) * h
        clicks = window_count(clicks_by_user.get(user, []), boundary)
        if clicks > cfg.bot_click_threshold:
            continue
        searches = window_count(searches_by_user.get(user, []), boundary)
        if searches > cfg.bot_search_threshold:
            continue
        out.append(row)
    return out


def custom_training_rows(rows: List[dict], cfg: BTConfig) -> List[dict]:
    """Sparse labeled training rows, equivalent to GenTrainData (Fig 12).

    Produces one row ``{Time, UserId, AdId, y, Keyword, Count}`` per
    profile keyword per click/non-click activity.
    """
    # index clicks per (user, ad) for the non-click anti-join
    clicks_by_user_ad: Dict[Tuple[str, str], List[int]] = {}
    searches_by_user: Dict[str, List[Tuple[int, str]]] = {}
    for row in rows:
        if row["StreamId"] == CLICK:
            key = (row["UserId"], row["KwAdId"])
            clicks_by_user_ad.setdefault(key, []).append(row["Time"])
        elif row["StreamId"] == KEYWORD:
            searches_by_user.setdefault(row["UserId"], []).append(
                (row["Time"], row["KwAdId"])
            )
    for times in clicks_by_user_ad.values():
        times.sort()
    for pairs in searches_by_user.values():
        pairs.sort()

    def followed_by_click(user: str, ad: str, t: int) -> bool:
        times = clicks_by_user_ad.get((user, ad))
        if not times:
            return False
        idx = bisect_left(times, t)
        return idx < len(times) and times[idx] <= t + cfg.click_horizon

    def profile_at(user: str, t: int) -> Dict[str, int]:
        pairs = searches_by_user.get(user, [])
        lo = bisect_right(pairs, (t - cfg.ubp_window, "￿"))
        hi = bisect_right(pairs, (t, "￿"))
        counts: Dict[str, int] = {}
        for i in range(lo, hi):
            kw = pairs[i][1]
            counts[kw] = counts.get(kw, 0) + 1
        return counts

    out = []
    for row in rows:
        if row["StreamId"] == IMPRESSION:
            if followed_by_click(row["UserId"], row["KwAdId"], row["Time"]):
                continue
            y = 0
        elif row["StreamId"] == CLICK:
            y = 1
        else:
            continue
        for kw, count in sorted(profile_at(row["UserId"], row["Time"]).items()):
            out.append(
                {
                    "Time": row["Time"],
                    "UserId": row["UserId"],
                    "AdId": row["KwAdId"],
                    "y": y,
                    "Keyword": kw,
                    "Count": count,
                }
            )
    return out


def custom_keyword_scores(
    rows: List[dict], cfg: BTConfig
) -> List[dict]:
    """Per-(ad, keyword) z-scores above threshold, equivalent to CalcScore.

    ``rows`` is the unified log; activities and sparse profile rows are
    recomputed internally (the counts must cover *all* activities,
    including those with empty profiles).
    """
    train = custom_training_rows(rows, cfg)

    # ad totals over all activities; non-clicks need the anti-join again
    clicks_by_user_ad: Dict[Tuple[str, str], List[int]] = {}
    for row in rows:
        if row["StreamId"] == CLICK:
            clicks_by_user_ad.setdefault((row["UserId"], row["KwAdId"]), []).append(
                row["Time"]
            )
    for times in clicks_by_user_ad.values():
        times.sort()
    totals: Dict[str, List[int]] = {}
    for row in rows:
        if row["StreamId"] == CLICK:
            tot = totals.setdefault(row["KwAdId"], [0, 0])
            tot[0] += 1
            tot[1] += 1
        elif row["StreamId"] == IMPRESSION:
            times = clicks_by_user_ad.get((row["UserId"], row["KwAdId"]))
            if times:
                idx = bisect_left(times, row["Time"])
                if idx < len(times) and times[idx] <= row["Time"] + cfg.click_horizon:
                    continue
            tot = totals.setdefault(row["KwAdId"], [0, 0])
            tot[1] += 1

    per_kw: Dict[Tuple[str, str], List[int]] = {}
    for row in train:
        slot = per_kw.setdefault((row["AdId"], row["Keyword"]), [0, 0])
        slot[0] += row["y"]
        slot[1] += 1

    out = []
    for (ad, kw), (clicks_with, impr_with) in sorted(per_kw.items()):
        if clicks_with < cfg.min_support:
            continue
        total_clicks, total_impr = totals.get(ad, (0, 0))
        z = keyword_z_score(clicks_with, impr_with, total_clicks, total_impr)
        if abs(z) > cfg.z_threshold:
            out.append({"AdId": ad, "Keyword": kw, "z": z})
    return out


def custom_running_click_count(rows: List[dict], window: int) -> List[dict]:
    """The Section II-C hand-written reducer for RunningClickCount.

    "We partition by AdId, and write a reducer that processes all entries
    in Time sequence. The reducer maintains all clicks and their
    timestamps in the 6-hour window in a linked list. When a new row is
    processed, we look up the list, delete expired rows, and output the
    refreshed count." — with all the caveats the paper lists: requires
    pre-sorted input, cannot handle disorder, and is not reusable.

    Emits ``{Time, AdId, Count, _re}`` interval rows equivalent to the
    temporal query's output (the count valid until it next changes).
    """
    from collections import deque

    by_ad: Dict[str, List[int]] = {}
    for row in rows:
        if row["StreamId"] == CLICK:
            by_ad.setdefault(row["KwAdId"], []).append(row["Time"])

    out: List[dict] = []
    for ad in sorted(by_ad):
        times = sorted(by_ad[ad])
        live: deque = deque()
        # changepoints: every arrival and every expiry boundary
        boundaries = sorted({t for t in times} | {t + window for t in times})
        idx = 0
        prev_boundary = None
        prev_count = 0
        for boundary in boundaries:
            while idx < len(times) and times[idx] <= boundary:
                live.append(times[idx])
                idx += 1
            while live and live[0] + window <= boundary:
                live.popleft()
            if prev_boundary is not None and prev_count > 0:
                out.append(
                    {"Time": prev_boundary, "AdId": ad, "Count": prev_count,
                     "_re": boundary}
                )
            prev_boundary = boundary
            prev_count = len(live)
        # the final boundary is max(time) + window, where the list empties
    out.sort(key=lambda r: (r["Time"], r["AdId"]))
    return out


def lines_of_code(*objects) -> int:
    """Count effective source lines (the Figure 14 dev-effort proxy)."""
    total = 0
    for obj in objects:
        source = inspect.getsource(obj)
        in_doc = False
        for line in source.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                    in_doc = not in_doc
                continue
            if in_doc:
                continue
            total += 1
    return total
