"""Hand-written baseline implementations of the BT stages.

These are the paper's "custom reducers" comparator (Figure 14): direct,
non-reusable code that re-implements windowed logic with bespoke data
structures, instead of declarative temporal queries. Used to compare
development effort (lines of code) and runtime, and to cross-check
outputs against the query implementations.
"""

from .custom import (
    custom_bot_elimination,
    custom_keyword_scores,
    custom_training_rows,
    lines_of_code,
)

__all__ = [
    "custom_bot_elimination",
    "custom_keyword_scores",
    "custom_training_rows",
    "lines_of_code",
]
