"""The temporal queries of the end-to-end BT solution (Section IV-B).

Every BT stage is a declarative CQ over the unified schema — these are
the "20 easy-to-write temporal queries" of Figure 14. Each builder
returns a :class:`repro.temporal.Query`; the same objects run unmodified
on the single-node engine (real-time-ready) and at scale through TiMR.

The registry at the bottom is what the Figure 14 benchmark counts.
"""

from __future__ import annotations

from typing import Dict

from ..temporal.plan import SourceNode
from ..temporal.query import Query
from .schema import CLICK, IMPRESSION, KEYWORD, BTConfig
from .ztest import keyword_z_score

#: Payload columns of the unified schema (Figure 9) once Time moves into
#: the event lifetime.
UNIFIED_COLUMNS = ("StreamId", "UserId", "KwAdId")


def _with_schema(source: Query) -> Query:
    """Declare the unified schema on a bare source (optimizer metadata).

    When the caller hands a plain ``Query.source("logs")``, attach the
    Figure 9 columns so the annotation optimizer knows which partitioning
    keys the raw stream supports. Sources with declared columns and
    derived streams pass through untouched.
    """
    node = source.to_plan()
    if isinstance(node, SourceNode) and node.columns is None:
        return Query(SourceNode(node.name, UNIFIED_COLUMNS))
    return source

# ---------------------------------------------------------------------------
# B.1 Bot elimination (Figure 11)
# ---------------------------------------------------------------------------


def bot_detection_query(source: Query, cfg: BTConfig) -> Query:
    """The bot list: users whose windowed click or search count is high.

    A hopping window (hop = 15 min, width = 6 h) refreshes the list every
    15 minutes from the trailing 6 hours; within each user's group the
    click and keyword sub-streams are counted separately, thresholded,
    and unioned.
    """
    source = _with_schema(source)
    windowed = source.hopping_window(cfg.bot_window, cfg.bot_hop)
    return windowed.group_apply(
        "UserId",
        lambda g: (
            g.where_equals("StreamId", CLICK)
            .count(into="n")
            .where_greater("n", cfg.bot_click_threshold)
            .union(
                g.where_equals("StreamId", KEYWORD)
                .count(into="n")
                .where_greater("n", cfg.bot_search_threshold)
            )
        ),
        label="bot-detect",
    )


def bot_elimination_query(source: Query, cfg: BTConfig) -> Query:
    """Original events minus those of currently flagged bot users."""
    source = _with_schema(source)
    return source.anti_semi_join(
        bot_detection_query(source, cfg), on="UserId", label="bot-elim"
    )


# ---------------------------------------------------------------------------
# B.2 Generating training data (Figure 12)
# ---------------------------------------------------------------------------


def non_click_query(source: Query, cfg: BTConfig) -> Query:
    """Impressions not followed by a click (same user & ad) within d.

    Clicks get their LE moved d into the past (AlterLifetime), so an
    AntiSemiJoin drops every impression with a click in its future
    d-window.
    """
    source = _with_schema(source)
    impressions = source.where_equals("StreamId", IMPRESSION)
    clicks_back = source.where_equals("StreamId", CLICK).shift(
        -cfg.click_horizon, 0
    )
    return impressions.anti_semi_join(
        clicks_back, on=["UserId", "KwAdId"], label="non-clicks"
    )


def labeled_activity_query(source: Query, cfg: BTConfig) -> Query:
    """Click (y=1) and non-click (y=0) examples on one stream S1."""
    source = _with_schema(source)
    nonclicks = non_click_query(source, cfg).project(
        lambda p: {"UserId": p["UserId"], "AdId": p["KwAdId"], "y": 0},
        label="label-nonclick",
        columns=("UserId", "AdId", "y"),
    )
    clicks = (
        source.where_equals("StreamId", CLICK)
        .project(
            lambda p: {"UserId": p["UserId"], "AdId": p["KwAdId"], "y": 1},
            label="label-click",
            columns=("UserId", "AdId", "y"),
        )
    )
    return nonclicks.union(clicks)


def ubp_query(source: Query, cfg: BTConfig) -> Query:
    """Sparse user behavior profiles, refreshed at every user activity.

    Per (UserId, Keyword) group: a tau-window count — exactly the UBP of
    Definition 1 in sparse representation.
    """
    source = _with_schema(source)
    keywords = source.where_equals("StreamId", KEYWORD)
    counts = keywords.group_apply(
        ["UserId", "KwAdId"],
        lambda g: g.window(cfg.ubp_window).count(into="Count"),
        label="ubp-counts",
    )
    return counts.project(
        lambda p: {"UserId": p["UserId"], "Keyword": p["KwAdId"], "Count": p["Count"]},
        label="ubp-rename",
        columns=("UserId", "Keyword", "Count"),
    )


def training_data_query(source: Query, cfg: BTConfig) -> Query:
    """GenTrainData: every click/non-click joined with the user's UBP.

    Output: one point event per (activity, profile keyword) —
    ``{UserId, AdId, y, Keyword, Count}`` — the sparse training row.
    """
    source = _with_schema(source)
    activity = labeled_activity_query(source, cfg)
    ubp = ubp_query(source, cfg)
    return activity.temporal_join(
        ubp,
        on="UserId",
        select=lambda l, r: {
            "UserId": l["UserId"],
            "AdId": l["AdId"],
            "y": l["y"],
            "Keyword": r["Keyword"],
            "Count": r["Count"],
        },
        label="gen-train-data",
        columns=("UserId", "AdId", "y", "Keyword", "Count"),
    )


# ---------------------------------------------------------------------------
# B.3 Feature selection (Figure 13)
# ---------------------------------------------------------------------------


def total_count_query(activity: Query, cfg: BTConfig, horizon: int) -> Query:
    """TotalCount: per-ad click and impression totals over ``horizon``.

    The counts use a hopping window whose hop *covers the elimination
    interval* (Figure 13: "with h covering the time interval over which
    we perform keyword elimination"), so totals refresh once per horizon
    instead of at every event — which also keeps the later join with the
    per-keyword stream linear. One aggregation computes both counters:
    the sum of the 0/1 click label is the click total and the example
    count is the impression total. The one-tick shift aligns events at
    t=0 with the first hop boundary.
    """
    from ..temporal.operators import AggSpec

    return activity.group_apply(
        "AdId",
        lambda g: g.shift(1).hopping_window(horizon, horizon).aggregate(
            AggSpec("sum", "TotalClicks", "y"), AggSpec("count", "TotalImpr")
        ),
        label="total-count",
    )


def per_keyword_count_query(train: Query, cfg: BTConfig, horizon: int) -> Query:
    """PerKWCount: per-(ad, keyword) click and impression counts."""
    from ..temporal.operators import AggSpec

    return train.group_apply(
        ["AdId", "Keyword"],
        lambda g: g.shift(1).hopping_window(horizon, horizon).aggregate(
            AggSpec("sum", "ClicksWith", "y"), AggSpec("count", "ImprWith")
        ),
        label="per-kw-count",
    )


def calc_score_query(per_kw: Query, totals: Query, cfg: BTConfig) -> Query:
    """CalcScore: join per-keyword counts with ad totals and compute z.

    Keywords without sufficient support (fewer than ``min_support``
    clicks with the keyword in the profile) are dropped before the test;
    the final filter keeps keywords with |z| above the threshold.
    """
    joined = per_kw.temporal_join(totals, on="AdId", label="kw-vs-total")
    supported = joined.where(
        lambda p, _s=cfg.min_support: p["ClicksWith"] >= _s,
        label="support-filter",
        spec=("ge", "ClicksWith", cfg.min_support),
    )
    scored = supported.project(
        lambda p: {
            "AdId": p["AdId"],
            "Keyword": p["Keyword"],
            "z": keyword_z_score(
                p["ClicksWith"], p["ImprWith"], p["TotalClicks"], p["TotalImpr"]
            ),
        },
        label="calc-score",
        columns=("AdId", "Keyword", "z"),
    )
    return scored.where(
        lambda p, _t=cfg.z_threshold: abs(p["z"]) > _t, label="z-filter"
    )


def feature_selection_query(source: Query, cfg: BTConfig, horizon: int) -> Query:
    """End-to-end KE-z: unified log in, retained (AdId, Keyword, z) out."""
    source = _with_schema(source)
    activity = labeled_activity_query(source, cfg)
    train = training_data_query(source, cfg)
    totals = total_count_query(activity, cfg, horizon)
    per_kw = per_keyword_count_query(train, cfg, horizon)
    return calc_score_query(per_kw, totals, cfg)


# ---------------------------------------------------------------------------
# Query registry (what Figure 14 counts)
# ---------------------------------------------------------------------------

#: name -> one-line description of each temporal query in the BT solution.
BT_QUERY_REGISTRY: Dict[str, str] = {
    "bot-hop-window": "hopping window over the unified stream",
    "bot-click-count": "per-user windowed click count",
    "bot-click-threshold": "click count threshold filter",
    "bot-search-count": "per-user windowed keyword count",
    "bot-search-threshold": "keyword count threshold filter",
    "bot-union": "union of both bot signals",
    "bot-anti-semi-join": "drop events of flagged bot users",
    "nonclick-shift": "move click lifetimes d into the past",
    "nonclick-asj": "impressions without a following click",
    "label-union": "clicks (y=1) union non-clicks (y=0)",
    "ubp-window-count": "per (user, keyword) tau-window counts",
    "traindata-join": "activities joined with sparse UBPs",
    "total-click-count": "per-ad click totals",
    "total-nonclick-count": "per-ad non-click totals",
    "perkw-click-count": "per (ad, keyword) click counts",
    "perkw-nonclick-count": "per (ad, keyword) non-click counts",
    "calcscore-join": "per-keyword counts joined with ad totals",
    "calcscore-udo": "two-proportion z-test UDO",
    "calcscore-filter": "z threshold filter",
    "modelgen-udo": "hopping-window logistic regression UDO",
    "scoring-join": "UBPs joined against the current model synopsis",
}


def query_count() -> int:
    """Number of temporal queries in the BT solution (Figure 14 left)."""
    return len(BT_QUERY_REGISTRY)
