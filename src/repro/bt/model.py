"""Model generation and scoring (Section IV-B.4).

A logistic-regression model per ad predicts click probability from the
reduced behavior profile: ``y = 1 / (1 + exp(-(w0 + w.x)))``. The paper
chooses LR for simplicity, good performance, and fast convergence; we
train with iteratively reweighted least squares (Newton's method) plus
an L2 ridge, which converges in a handful of iterations.

Because CTR is far below 50%, training data is *balanced* by sampling
the negative examples; the LR output is then no longer an expected CTR,
so predictions are calibrated on a held-out validation set: the CTR for
a prediction ``y`` is the positive fraction among the k validation
examples with the nearest predictions (Section IV-B.4).
"""

from __future__ import annotations

import time as _time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .examples import Example


@dataclass
class TrainingStats:
    """Bookkeeping for the memory/learning-time experiment (Section V-D)."""

    num_examples: int = 0
    num_positives: int = 0
    num_features: int = 0
    avg_profile_entries: float = 0.0
    learn_seconds: float = 0.0
    iterations: int = 0


class LogisticModel:
    """A trained per-ad logistic regression with CTR calibration."""

    def __init__(
        self,
        ad: str,
        feature_index: Dict[str, int],
        weights: np.ndarray,
        intercept: float,
        calibration: Tuple[np.ndarray, np.ndarray],
        stats: TrainingStats,
        knn_k: int = 101,
    ):
        self.ad = ad
        self.feature_index = feature_index
        self.weights = weights
        self.intercept = intercept
        self._cal_preds, self._cal_labels = calibration
        self._cal_prefix = np.concatenate([[0.0], np.cumsum(self._cal_labels)])
        self.stats = stats
        self.knn_k = knn_k

    def predict(self, features: Dict[str, float]) -> float:
        """The raw LR output in (0, 1) for a reduced profile."""
        s = self.intercept
        for name, value in features.items():
            idx = self.feature_index.get(name)
            if idx is not None:
                s += self.weights[idx] * value
        return float(1.0 / (1.0 + np.exp(-s)))

    def predict_ctr(self, features: Dict[str, float]) -> float:
        """Calibrated expected CTR for a reduced profile."""
        return self.calibrate(self.predict(features))

    def calibrate(self, prediction: float) -> float:
        """Expected CTR: positive rate of the k nearest validation preds."""
        n = len(self._cal_preds)
        if n == 0:
            return prediction
        k = min(self.knn_k, n)
        pos = bisect_left(self._cal_preds, prediction)
        lo = max(0, min(pos - k // 2, n - k))
        hi = lo + k
        return float((self._cal_prefix[hi] - self._cal_prefix[lo]) / k)


def _vectorize(
    examples: Sequence[Example],
    transform,
    ad: str,
    feature_index: Optional[Dict[str, int]] = None,
):
    """Reduced profiles -> CSR matrix (+ feature index on first pass)."""
    from scipy import sparse

    build_index = feature_index is None
    if build_index:
        feature_index = {}
    indptr = [0]
    indices: List[int] = []
    data: List[float] = []
    for ex in examples:
        reduced = transform(ad, ex.features)
        for name, value in reduced.items():
            if build_index:
                idx = feature_index.setdefault(name, len(feature_index))
            else:
                idx = feature_index.get(name)
                if idx is None:
                    continue
            indices.append(idx)
            data.append(value)
        indptr.append(len(indices))
    num_features = len(feature_index)
    x = sparse.csr_matrix(
        (np.asarray(data), np.asarray(indices, dtype=np.int64), np.asarray(indptr)),
        shape=(len(examples), num_features),
    )
    return x, feature_index


def _irls(x, y: np.ndarray, l2: float, max_iter: int, tol: float) -> Tuple[np.ndarray, float, int]:
    """Ridge-regularized IRLS for logistic regression on a CSR matrix."""
    from scipy import sparse
    from scipy.sparse.linalg import spsolve

    n, d = x.shape
    xb = sparse.hstack([sparse.csr_matrix(np.ones((n, 1))), x], format="csr")
    beta = np.zeros(d + 1)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        eta = xb @ beta
        mu = 1.0 / (1.0 + np.exp(-eta))
        w = np.maximum(mu * (1.0 - mu), 1e-6)
        grad = xb.T @ (y - mu) - l2 * np.concatenate([[0.0], beta[1:]])
        hess = (xb.T @ sparse.diags(w) @ xb).tocsc() + l2 * sparse.eye(d + 1, format="csc")
        step = spsolve(hess, grad)
        beta = beta + step
        if np.max(np.abs(step)) < tol:
            break
    return beta[1:], float(beta[0]), iterations


@dataclass
class ModelTrainer:
    """Builds one :class:`LogisticModel` per ad from reduced examples."""

    l2: float = 1.0
    max_iter: int = 25
    tol: float = 1e-6
    balance_negatives: bool = True
    validation_fraction: float = 0.25
    knn_k: int = 101
    seed: int = 7

    def fit(self, ad: str, examples: Sequence[Example], transform) -> LogisticModel:
        """Train and calibrate a model for ``ad``.

        Args:
            ad: the ad class.
            examples: its training examples (un-reduced profiles).
            transform: the fitted selector's ``transform(ad, features)``.
        """
        rng = np.random.default_rng(self.seed)
        start = _time.perf_counter()

        examples = list(examples)
        rng.shuffle(examples)
        n_val = int(len(examples) * self.validation_fraction)
        validation, training = examples[:n_val], examples[n_val:]

        if self.balance_negatives:
            training = self._balance(training, rng)

        x, feature_index = _vectorize(training, transform, ad)
        y = np.array([ex.y for ex in training], dtype=float)
        if x.shape[1] == 0 or y.sum() in (0, len(y)):
            weights = np.zeros(x.shape[1])
            base = (y.mean() if len(y) else 0.0) or 1e-6
            intercept = float(np.log(base / max(1e-6, 1 - base)))
            iterations = 0
        else:
            weights, intercept, iterations = _irls(
                x, y, self.l2, self.max_iter, self.tol
            )
        learn_seconds = _time.perf_counter() - start

        # calibration on the (unbalanced) validation slice
        cal_pairs = []
        for ex in validation:
            s = intercept
            reduced = transform(ad, ex.features)
            for name, value in reduced.items():
                idx = feature_index.get(name)
                if idx is not None:
                    s += weights[idx] * value
            cal_pairs.append((1.0 / (1.0 + np.exp(-s)), float(ex.y)))
        cal_pairs.sort()
        cal_preds = np.array([p for p, _ in cal_pairs])
        cal_labels = np.array([l for _, l in cal_pairs])

        reduced_sizes = [len(transform(ad, ex.features)) for ex in examples]
        stats = TrainingStats(
            num_examples=len(training),
            num_positives=int(y.sum()),
            num_features=len(feature_index),
            avg_profile_entries=float(np.mean(reduced_sizes)) if reduced_sizes else 0.0,
            learn_seconds=learn_seconds,
            iterations=iterations,
        )
        return LogisticModel(
            ad=ad,
            feature_index=feature_index,
            weights=weights,
            intercept=intercept,
            calibration=(cal_preds, cal_labels),
            stats=stats,
            knn_k=self.knn_k,
        )

    def _balance(self, examples: List[Example], rng) -> List[Example]:
        positives = [ex for ex in examples if ex.y == 1]
        negatives = [ex for ex in examples if ex.y == 0]
        if not positives or len(negatives) <= len(positives):
            return examples
        idx = rng.choice(len(negatives), size=len(positives), replace=False)
        sampled = [negatives[i] for i in idx]
        balanced = positives + sampled
        rng.shuffle(balanced)
        return balanced
