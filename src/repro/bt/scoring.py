"""Streaming model generation and scoring (Section IV-B.4, implementation).

The paper's fully-incremental deployment shape: per ad, a hopping-window
UDO periodically re-learns the logistic regression from the examples in
its window (hop size = how often to re-learn, window size = how much
history to learn from); the emitted model weights are valid until the
next rebuild, so they sit in the right synopsis of a TemporalJoin and
every new profile arriving on the left is scored against the *current*
model. The exact same queries back-test over offline logs and serve a
live feed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..temporal.event import Event
from ..temporal.query import Query
from .examples import Example
from .model import LogisticModel, ModelTrainer
from .schema import BTConfig


def example_events(examples: Iterable[Example]) -> List[Event]:
    """Examples as point events ``{UserId, AdId, y, Features}``.

    The ``Features`` column holds the sparse reduced profile dict — the
    payload a production scorer would carry per impression opportunity.
    """
    events = [
        Event.point(
            ex.time,
            {"UserId": ex.user, "AdId": ex.ad, "y": ex.y, "Features": ex.features},
        )
        for ex in sorted(examples, key=lambda e: (e.time, e.user, e.ad, e.y))
    ]
    return events


def model_generation_query(
    source: Query,
    cfg: Optional[BTConfig] = None,
    trainer: Optional[ModelTrainer] = None,
) -> Query:
    """Per-ad periodic LR re-learning as a hopping-window UDO.

    Emits, at every hop boundary, a model event ``{w0, w}`` (intercept
    and weight dict) alive until the next boundary.
    """
    cfg = cfg or BTConfig()
    trainer = trainer or ModelTrainer()

    def relearn(window_payloads: List[dict], boundary: int) -> Iterable[dict]:
        examples = [
            Example(
                user=p["UserId"], ad=p["AdId"], time=0, y=p["y"],
                features=dict(p["Features"]),
            )
            for p in window_payloads
        ]
        if not examples:
            return
        ad = examples[0].ad
        model = trainer.fit(ad, examples, lambda _ad, f: f)
        weights = {
            name: float(model.weights[idx])
            for name, idx in model.feature_index.items()
        }
        yield {"w0": model.intercept, "w": weights}

    return source.group_apply(
        "AdId",
        lambda g: g.udo_hopping(
            cfg.model_window, cfg.model_hop, relearn, label="relearn-lr"
        ),
        label="model-gen",
    )


def scoring_query(profiles: Query, models: Query) -> Query:
    """Score each profile event against the currently valid ad model.

    The models stream sits in the join synopsis; every profile point
    event on the left produces a prediction against the model whose
    lifetime covers the profile's timestamp.
    """

    def score(profile: dict, model: dict) -> dict:
        s = model["w0"]
        for name, value in profile["Features"].items():
            s += model["w"].get(name, 0.0) * value
        import math

        return {
            "UserId": profile["UserId"],
            "AdId": profile["AdId"],
            "y": profile["y"],
            "Prediction": 1.0 / (1.0 + math.exp(-s)),
        }

    return profiles.temporal_join(models, on="AdId", select=score, label="score")


def rank_ads_for_user(
    models: Dict[str, LogisticModel], features: Dict[str, float], transform
) -> List[tuple]:
    """Offline helper: rank all ad classes by calibrated CTR for a profile.

    This is the ad-delivery decision of Figure 10: score the user's UBP
    against every per-ad model and sort by expected CTR.
    """
    ranked = [
        (model.predict_ctr(transform(ad, features)), ad)
        for ad, model in models.items()
    ]
    ranked.sort(key=lambda t: (-t[0], t[1]))
    return [(ad, score) for score, ad in ranked]
