"""The unpooled two-proportion z-test for keyword relevance.

Section IV-B.3: for a given ad and keyword K, let ``C_K / I_K`` be the
clicks / impressions whose user profile contained K at impression time,
and ``C_K' / I_K'`` the clicks / impressions without K. With click rates
``p_K = C_K / I_K`` and ``p_K' = C_K' / I_K'``, the statistic::

            p_K - p_K'
    z = ----------------------------------------------
        sqrt(p_K (1-p_K) / I_K  +  p_K' (1-p_K') / I_K')

follows N(0, 1) under the null hypothesis "K is independent of clicks on
the ad". |z| > 1.96 rejects independence at 95% confidence; highly
positive (negative) z marks a keyword positively (negatively) correlated
with clicks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: z thresholds for common confidence levels (two-sided).
CONFIDENCE_TO_Z = {0.80: 1.28, 0.90: 1.645, 0.95: 1.96, 0.99: 2.576}


@dataclass(frozen=True)
class KeywordCounts:
    """Sufficient statistics for one (ad, keyword) pair."""

    clicks_with: int
    impressions_with: int
    clicks_without: int
    impressions_without: int

    @property
    def ctr_with(self) -> float:
        return self.clicks_with / self.impressions_with if self.impressions_with else 0.0

    @property
    def ctr_without(self) -> float:
        if not self.impressions_without:
            return 0.0
        return self.clicks_without / self.impressions_without


def two_proportion_z(counts: KeywordCounts) -> float:
    """The unpooled two-proportion z-score (0.0 when undefined).

    Degenerate cases — no impressions on either side, or both CTRs at an
    extreme making the variance zero — return 0.0, which always falls
    below any elimination threshold.
    """
    if not counts.impressions_with or not counts.impressions_without:
        return 0.0
    p1 = counts.ctr_with
    p2 = counts.ctr_without
    var = p1 * (1 - p1) / counts.impressions_with + p2 * (1 - p2) / counts.impressions_without
    if var <= 0.0:
        return 0.0
    return (p1 - p2) / math.sqrt(var)


def keyword_z_score(
    clicks_with: int,
    impressions_with: int,
    total_clicks: int,
    total_impressions: int,
) -> float:
    """z-score from with-keyword counts and ad totals (the CQ's view).

    The CalcScore sub-query (Figure 13) joins per-keyword counts with
    per-ad totals; the without-keyword side is the difference.
    """
    counts = KeywordCounts(
        clicks_with=clicks_with,
        impressions_with=impressions_with,
        clicks_without=max(0, total_clicks - clicks_with),
        impressions_without=max(0, total_impressions - impressions_with),
    )
    return two_proportion_z(counts)
