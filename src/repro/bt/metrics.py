"""Evaluation metrics: CTR, CTR lift, and lift-vs-coverage curves.

Section V-D: a model is evaluated by thresholding its prediction on test
examples. The CTR ``V`` over examples above the threshold is compared to
the overall test CTR ``V0``; *lift* is ``V - V0`` and *coverage* is the
fraction of examples above the threshold. Sweeping the threshold yields
the lift-vs-coverage curve of Figures 22-23; a bigger area under the
curve means a more effective strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from .examples import Example


def ctr(examples: Iterable[Example]) -> float:
    """#clicks / #impressions over a set of examples (0.0 when empty)."""
    n = clicks = 0
    for ex in examples:
        n += 1
        clicks += ex.y
    return clicks / n if n else 0.0


@dataclass(frozen=True)
class CurvePoint:
    """One threshold on the lift-coverage tradeoff."""

    threshold: float
    coverage: float
    ctr: float
    lift: float


def lift_coverage_curve(
    y_true: Sequence[int],
    scores: Sequence[float],
    num_points: int = 50,
) -> List[CurvePoint]:
    """Sweep prediction thresholds to trade coverage against CTR lift.

    Coverage 1.0 (threshold at the minimum score) has lift 0 by
    definition; decreasing coverage concentrates on confident examples.
    """
    y = np.asarray(y_true, dtype=float)
    s = np.asarray(scores, dtype=float)
    if len(y) != len(s):
        raise ValueError("y_true and scores must have equal length")
    if len(y) == 0:
        return []
    base = float(y.mean())
    order = np.argsort(-s, kind="stable")  # descending score
    y_sorted = y[order]
    s_sorted = s[order]
    cum_clicks = np.cumsum(y_sorted)
    n = len(y)

    points: List[CurvePoint] = []
    for frac in np.linspace(1.0 / num_points, 1.0, num_points):
        k = max(1, int(round(frac * n)))
        v = float(cum_clicks[k - 1] / k)
        points.append(
            CurvePoint(
                threshold=float(s_sorted[k - 1]),
                coverage=k / n,
                ctr=v,
                lift=v - base,
            )
        )
    return points


def area_under_lift(points: Sequence[CurvePoint], max_coverage: float = 1.0) -> float:
    """Trapezoidal area under the lift-coverage curve up to ``max_coverage``."""
    pts = [p for p in points if p.coverage <= max_coverage + 1e-12]
    if len(pts) < 2:
        return 0.0
    xs = np.array([p.coverage for p in pts])
    ys = np.array([p.lift for p in pts])
    order = np.argsort(xs)
    return float(np.trapezoid(ys[order], xs[order]))


def lift_at_coverage(points: Sequence[CurvePoint], coverage: float) -> float:
    """Lift at the curve point closest to the requested coverage."""
    if not points:
        return 0.0
    best = min(points, key=lambda p: abs(p.coverage - coverage))
    return best.lift


@dataclass
class KeywordSetRow:
    """One row of the Figure 21 table."""

    label: str
    clicks: int
    impressions: int
    ctr: float
    lift_percent: float


def keyword_example_sets(
    examples: Sequence[Example],
    positive_keywords: set,
    negative_keywords: set,
) -> List[KeywordSetRow]:
    """The Figure 21 analysis: CTR of example subsets defined by keywords.

    Five sets: all examples; profiles with >=1 positive-score keyword;
    with >=1 negative-score keyword; with only positive keywords (and at
    least one); with only negative keywords (and at least one).
    """

    def has_pos(ex):
        return any(k in positive_keywords for k in ex.features)

    def has_neg(ex):
        return any(k in negative_keywords for k in ex.features)

    def subset(label, pred):
        chosen = [ex for ex in examples if pred(ex)]
        clicks = sum(ex.y for ex in chosen)
        impr = len(chosen)
        v = clicks / impr if impr else 0.0
        return label, clicks, impr, v

    rows = [
        subset("All", lambda ex: True),
        subset(">=1 pos kw", has_pos),
        subset(">=1 neg kw", has_neg),
        subset("Only pos kws", lambda ex: has_pos(ex) and not has_neg(ex)),
        subset("Only neg kws", lambda ex: has_neg(ex) and not has_pos(ex)),
    ]
    base = rows[0][3]
    out = []
    for label, clicks, impr, v in rows:
        lift_pct = 100.0 * (v - base) / base if base > 0 else 0.0
        out.append(
            KeywordSetRow(
                label=label, clicks=clicks, impressions=impr, ctr=v,
                lift_percent=lift_pct,
            )
        )
    return out
