"""Demographic prediction from browsing behavior (Hu et al. [19]).

The related-work BT technique the paper cites: "Hu et al. use BT schemes
to predict users' gender and age from their browsing behavior." It is a
natural second application of this stack — the same user behavior
profiles that drive ad targeting also carry demographic signal — so we
implement it as a one-vs-rest bundle of the library's logistic models
over per-user keyword profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .examples import Example
from .model import LogisticModel, ModelTrainer
from .schema import KEYWORD


def user_profiles(rows: Iterable[dict]) -> Dict[str, Dict[str, float]]:
    """Whole-history keyword-count profile per user (bag of words)."""
    profiles: Dict[str, Dict[str, float]] = {}
    for row in rows:
        if row["StreamId"] != KEYWORD:
            continue
        profile = profiles.setdefault(row["UserId"], {})
        kw = row["KwAdId"]
        profile[kw] = profile.get(kw, 0.0) + 1.0
    return profiles


@dataclass
class DemographicModel:
    """One-vs-rest logistic models over user keyword profiles."""

    models: Dict[str, LogisticModel]
    classes: Tuple[str, ...]

    def scores(self, profile: Mapping[str, float]) -> Dict[str, float]:
        return {
            cls: model.predict(dict(profile)) for cls, model in self.models.items()
        }

    def predict(self, profile: Mapping[str, float]) -> str:
        s = self.scores(profile)
        return max(sorted(s), key=lambda cls: s[cls])


@dataclass
class DemographicEvaluation:
    accuracy: float
    majority_baseline: float
    per_class_recall: Dict[str, float] = field(default_factory=dict)
    confusion: Dict[Tuple[str, str], int] = field(default_factory=dict)


class DemographicPredictor:
    """Train/evaluate demographic prediction over a unified log."""

    def __init__(self, trainer: Optional[ModelTrainer] = None, min_profile: int = 3):
        self.trainer = trainer or ModelTrainer(seed=17)
        self.min_profile = min_profile

    def _labeled_profiles(
        self, rows: Iterable[dict], labels: Mapping[str, str]
    ) -> List[Tuple[str, Dict[str, float], str]]:
        profiles = user_profiles(rows)
        out = []
        for user, profile in sorted(profiles.items()):
            label = labels.get(user)
            if label is None or len(profile) < self.min_profile:
                continue
            out.append((user, profile, label))
        return out

    def fit(self, rows: Iterable[dict], labels: Mapping[str, str]) -> DemographicModel:
        """One-vs-rest LR per demographic class from labeled users."""
        data = self._labeled_profiles(rows, labels)
        if not data:
            raise ValueError("no labeled users with usable profiles")
        classes = tuple(sorted({label for _, _, label in data}))
        models: Dict[str, LogisticModel] = {}
        for cls in classes:
            examples = [
                Example(user=user, ad=cls, time=i, y=int(label == cls), features=profile)
                for i, (user, profile, label) in enumerate(data)
            ]
            models[cls] = self.trainer.fit(cls, examples, lambda _ad, f: f)
        return DemographicModel(models=models, classes=classes)

    def evaluate(
        self,
        model: DemographicModel,
        rows: Iterable[dict],
        labels: Mapping[str, str],
    ) -> DemographicEvaluation:
        """Accuracy over held-out users, vs the majority-class baseline."""
        data = self._labeled_profiles(rows, labels)
        if not data:
            return DemographicEvaluation(accuracy=0.0, majority_baseline=0.0)
        hits = 0
        confusion: Dict[Tuple[str, str], int] = {}
        class_totals: Dict[str, int] = {}
        class_hits: Dict[str, int] = {}
        for _user, profile, label in data:
            predicted = model.predict(profile)
            confusion[(label, predicted)] = confusion.get((label, predicted), 0) + 1
            class_totals[label] = class_totals.get(label, 0) + 1
            if predicted == label:
                hits += 1
                class_hits[label] = class_hits.get(label, 0) + 1
        majority = max(class_totals.values()) / len(data)
        recall = {
            cls: class_hits.get(cls, 0) / total
            for cls, total in sorted(class_totals.items())
        }
        return DemographicEvaluation(
            accuracy=hits / len(data),
            majority_baseline=majority,
            per_class_recall=recall,
            confusion=confusion,
        )
