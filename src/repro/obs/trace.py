"""Span-based tracing: the unified telemetry substrate.

A :class:`Span` is one timed unit of work — an engine operator
evaluation, a cluster stage, a TiMR fragment — with a name, a category
(``engine`` / ``cluster`` / ``timr`` / ``streaming``), free-form
attributes, and parent/child nesting. A :class:`Tracer` records spans as
context managers and keeps the nesting stack, so instrumentation in one
layer (a reducer's embedded DSMS) lands under the span of the layer that
invoked it (the cluster's reduce partition) without any plumbing.

Two clocks coexist:

* **wall time** — ``perf_counter`` start/duration per span, exported to
  Chrome ``trace_event`` timelines. Wall values are *observability only*:
  they never feed back into any dataset row, preserving determinism.
* **simulated time** — deterministic seconds charged by the cost model
  (shuffle, retry backoff). Instrumentation records them as ordinary
  span attributes (``sim_*``) and metrics, so they are reproducible
  across runs.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``enabled``
flag is False and whose spans are a shared no-op object — instrumented
code guards its hot paths with ``if tracer.enabled:`` and pays nothing
when tracing is off.

Cross-process tracing
---------------------

A :class:`Tracer` lives in the driver; forked workers cannot append to
it. Workers instead record into a :class:`WorkerSpanRecorder` — a
lightweight buffer of plain picklable tuples (plus an optional worker
metrics registry) that ships back with results over the existing result
pipe / shard reply messages. The driver calls :meth:`Tracer.absorb` to
re-parent the shipped spans under the dispatching span and tag each with
a stable worker *lane* (``worker-3``, ``shard-1``, ``driver``); the
Chrome exporter turns lanes into per-worker pid/tid timelines. Worker
wall times are directly comparable with the driver's because forked
children share the parent's ``perf_counter`` clock (CLOCK_MONOTONIC).

Lane attributes (``lane``) and recovery markers (``recovered``) depend
on OS scheduling; the deterministic view of a trace excludes them — see
:func:`repro.obs.export.sim_trace_tree`.
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Dict, Iterator, List, Optional

from .metrics import MetricsRegistry, NULL_REGISTRY


class Span:
    """One traced unit of work; use as a context manager via Tracer.span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "attrs",
        "depth",
        "start",
        "end",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        attrs: Dict[str, object],
        depth: int,
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.depth = depth
        self.start = 0.0
        self.end: Optional[float] = None

    # -- recording ----------------------------------------------------------

    def set(self, key: str, value) -> "Span":
        self.attrs[key] = value
        return self

    def add(self, key: str, delta) -> "Span":
        """Increment a numeric attribute (creating it at zero)."""
        self.attrs[key] = self.attrs.get(key, 0) + delta
        return self

    def set_duration(self, seconds: float) -> "Span":
        """Overwrite the measured duration (call after the span closed).

        Used for *summary* spans whose work happened elsewhere — e.g. the
        engine's per-operator spans, whose busy time accumulates inside
        the dataflow loop and is backfilled onto one span at the end.
        """
        self.end = self.start + seconds
        return self

    @property
    def wall_seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = _time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def __repr__(self):
        return f"<Span #{self.span_id} {self.category}:{self.name}>"


class Tracer:
    """Records a tree of spans plus a metrics registry.

    One tracer instance is threaded through every layer of a run; the
    internal stack makes spans opened by nested layers children of the
    innermost open span, whichever module opened it.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []  # in start order
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self.epoch = _time.perf_counter()

    def span(self, name: str, category: str = "", **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category or (parent.category if parent else ""),
            attrs=attrs,
            depth=len(self._stack),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def event(self, name: str, category: str = "", **attrs) -> Span:
        """Record an instant (zero-duration) span under the current span.

        Used for supervision events — worker kills, respawns, replays,
        degradations — that mark a moment rather than a duration. The
        Chrome exporter renders zero-duration spans as instant events.
        """
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category or (parent.category if parent else ""),
            attrs=attrs,
            depth=len(self._stack),
        )
        now = _time.perf_counter()
        span.start = now
        span.end = now
        self.spans.append(span)
        return span

    def absorb(
        self,
        records,
        lane: Optional[str] = None,
        parent: Optional[Span] = None,
        **extra_attrs,
    ) -> List[Span]:
        """Re-parent worker-recorded spans under ``parent`` (default: the
        currently open span) and tag them with a worker ``lane``.

        ``records`` is the output of :meth:`WorkerSpanRecorder.records`:
        ``(rel_id, rel_parent, name, category, start, end, attrs)``
        tuples in the worker's start order (children after their parent).
        Call in a deterministic order — worker/shard id, then chunk start
        — so span insertion order is reproducible across runs.
        """
        if parent is None:
            parent = self.current()
        base_parent_id = parent.span_id if parent is not None else None
        base_depth = parent.depth + 1 if parent is not None else 0
        absorbed: List[Span] = []
        by_rel: Dict[int, Span] = {}
        for rel_id, rel_parent, name, category, start, end, attrs in records:
            rel_parent_span = by_rel.get(rel_parent)
            span = Span(
                tracer=self,
                span_id=next(self._ids),
                parent_id=(
                    rel_parent_span.span_id
                    if rel_parent_span is not None
                    else base_parent_id
                ),
                name=name,
                category=category,
                attrs=dict(attrs),
                depth=(
                    rel_parent_span.depth + 1
                    if rel_parent_span is not None
                    else base_depth
                ),
            )
            span.start = start
            span.end = end
            if lane is not None:
                span.attrs["lane"] = lane
            if extra_attrs:
                span.attrs.update(extra_attrs)
            by_rel[rel_id] = span
            self.spans.append(span)
            absorbed.append(span)
        return absorbed

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finished(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    # -- internals -----------------------------------------------------------

    def _pop(self, span: Span) -> None:
        # tolerate out-of-order exits (exceptions unwinding several spans)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break


class _RecSpan:
    """One span being recorded inside a worker (context manager)."""

    __slots__ = ("_recorder", "rel_id", "parent_id", "name", "category",
                 "attrs", "start", "end")

    def __init__(self, recorder, rel_id, parent_id, name, category, attrs):
        self._recorder = recorder
        self.rel_id = rel_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.start = 0.0
        self.end: Optional[float] = None

    def set(self, key: str, value) -> "_RecSpan":
        self.attrs[key] = value
        return self

    def add(self, key: str, delta) -> "_RecSpan":
        self.attrs[key] = self.attrs.get(key, 0) + delta
        return self

    def set_duration(self, seconds: float) -> "_RecSpan":
        self.end = self.start + seconds
        return self

    def __enter__(self) -> "_RecSpan":
        self.start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = _time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._recorder._pop(self)


class WorkerSpanRecorder:
    """Worker-side span + metrics buffer, shipped back as plain data.

    Mirrors the :class:`Tracer` span API (``span`` context managers with
    nesting) but records into picklable tuples instead of live
    :class:`Span` objects; the driver re-parents them with
    :meth:`Tracer.absorb`. ``metrics`` is a private
    :class:`MetricsRegistry` whose :meth:`~MetricsRegistry.export_state`
    ships alongside (see :meth:`state`). Workers run single-threaded, so
    no locking.
    """

    enabled = True

    def __init__(self):
        self.metrics = MetricsRegistry()
        self._spans: List[_RecSpan] = []  # in start order
        self._stack: List[_RecSpan] = []
        self._ids = itertools.count(1)

    def span(self, name: str, category: str = "", **attrs) -> _RecSpan:
        parent = self._stack[-1] if self._stack else None
        rec = _RecSpan(
            recorder=self,
            rel_id=next(self._ids),
            parent_id=parent.rel_id if parent is not None else None,
            name=name,
            category=category or (parent.category if parent else ""),
            attrs=attrs,
        )
        self._spans.append(rec)
        self._stack.append(rec)
        return rec

    def event(self, name: str, category: str = "", **attrs) -> _RecSpan:
        parent = self._stack[-1] if self._stack else None
        rec = _RecSpan(
            recorder=self,
            rel_id=next(self._ids),
            parent_id=parent.rel_id if parent is not None else None,
            name=name,
            category=category or (parent.category if parent else ""),
            attrs=attrs,
        )
        now = _time.perf_counter()
        rec.start = now
        rec.end = now
        self._spans.append(rec)
        return rec

    def records(self) -> List[tuple]:
        """Finished spans as ``(rel_id, rel_parent, name, category,
        start, end, attrs)`` tuples, in *start* order (parents before
        their children), ready for :meth:`Tracer.absorb`."""
        return [
            (s.rel_id, s.parent_id, s.name, s.category, s.start, s.end, s.attrs)
            for s in self._spans
            if s.end is not None
        ]

    def state(self) -> tuple:
        """The whole buffer as one picklable value: ``(records,
        metrics_state)``. Ship this with the worker's result message and
        hand it to :func:`absorb_worker_state` on the driver."""
        return (self.records(), self.metrics.export_state())

    def _pop(self, rec: _RecSpan) -> None:
        while self._stack:
            top = self._stack.pop()
            if top is rec:
                break


def absorb_worker_state(
    tracer,
    state,
    lane: Optional[str] = None,
    parent=None,
    **extra_attrs,
):
    """Fold one worker's :meth:`WorkerSpanRecorder.state` into a tracer.

    Spans are re-parented under ``parent`` (default: the tracer's
    current span) tagged with ``lane``; worker metrics merge into the
    tracer's registry. No-op on a disabled tracer or an empty state.
    Returns the absorbed spans.
    """
    if state is None or not tracer.enabled:
        return []
    records, metrics_state = state
    if metrics_state:
        tracer.metrics.merge_state(metrics_state)
    if not records:
        return []
    return tracer.absorb(records, lane=lane, parent=parent, **extra_attrs)


class _NullSpan:
    """Shared no-op span: every method returns immediately."""

    __slots__ = ()

    def set(self, key, value):
        return self

    def add(self, key, delta):
        return self

    def set_duration(self, seconds):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class NullTracer:
    """The zero-cost disabled tracer: one shared span, no recording.

    ``enabled`` is False so instrumented hot loops skip their recording
    branches entirely; code that unconditionally opens a coarse span
    (one per job, say) gets a shared no-op object.
    """

    enabled = False

    def __init__(self):
        self.metrics = NULL_REGISTRY
        self.spans: List[Span] = []
        self._span = _NullSpan()

    def span(self, name: str, category: str = "", **attrs) -> _NullSpan:
        return self._span

    def event(self, name: str, category: str = "", **attrs) -> _NullSpan:
        return self._span

    def absorb(self, records, lane=None, parent=None, **extra_attrs):
        return []

    def current(self) -> None:
        return None

    def finished(self):
        return []

    def children(self, span):
        return []

    def roots(self):
        return []


#: Process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()
