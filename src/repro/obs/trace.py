"""Span-based tracing: the unified telemetry substrate.

A :class:`Span` is one timed unit of work — an engine operator
evaluation, a cluster stage, a TiMR fragment — with a name, a category
(``engine`` / ``cluster`` / ``timr`` / ``streaming``), free-form
attributes, and parent/child nesting. A :class:`Tracer` records spans as
context managers and keeps the nesting stack, so instrumentation in one
layer (a reducer's embedded DSMS) lands under the span of the layer that
invoked it (the cluster's reduce partition) without any plumbing.

Two clocks coexist:

* **wall time** — ``perf_counter`` start/duration per span, exported to
  Chrome ``trace_event`` timelines. Wall values are *observability only*:
  they never feed back into any dataset row, preserving determinism.
* **simulated time** — deterministic seconds charged by the cost model
  (shuffle, retry backoff). Instrumentation records them as ordinary
  span attributes (``sim_*``) and metrics, so they are reproducible
  across runs.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``enabled``
flag is False and whose spans are a shared no-op object — instrumented
code guards its hot paths with ``if tracer.enabled:`` and pays nothing
when tracing is off.
"""

from __future__ import annotations

import itertools
import time as _time
from typing import Dict, Iterator, List, Optional

from .metrics import MetricsRegistry, NULL_REGISTRY


class Span:
    """One traced unit of work; use as a context manager via Tracer.span."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "attrs",
        "depth",
        "start",
        "end",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        attrs: Dict[str, object],
        depth: int,
    ):
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.depth = depth
        self.start = 0.0
        self.end: Optional[float] = None

    # -- recording ----------------------------------------------------------

    def set(self, key: str, value) -> "Span":
        self.attrs[key] = value
        return self

    def add(self, key: str, delta) -> "Span":
        """Increment a numeric attribute (creating it at zero)."""
        self.attrs[key] = self.attrs.get(key, 0) + delta
        return self

    def set_duration(self, seconds: float) -> "Span":
        """Overwrite the measured duration (call after the span closed).

        Used for *summary* spans whose work happened elsewhere — e.g. the
        engine's per-operator spans, whose busy time accumulates inside
        the dataflow loop and is backfilled onto one span at the end.
        """
        self.end = self.start + seconds
        return self

    @property
    def wall_seconds(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Span":
        self.start = _time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = _time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def __repr__(self):
        return f"<Span #{self.span_id} {self.category}:{self.name}>"


class Tracer:
    """Records a tree of spans plus a metrics registry.

    One tracer instance is threaded through every layer of a run; the
    internal stack makes spans opened by nested layers children of the
    innermost open span, whichever module opened it.
    """

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []  # in start order
        self._stack: List[Span] = []
        self._ids = itertools.count(1)
        self.epoch = _time.perf_counter()

    def span(self, name: str, category: str = "", **attrs) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            tracer=self,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            category=category or (parent.category if parent else ""),
            attrs=attrs,
            depth=len(self._stack),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finished(self) -> List[Span]:
        return [s for s in self.spans if s.end is not None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    # -- internals -----------------------------------------------------------

    def _pop(self, span: Span) -> None:
        # tolerate out-of-order exits (exceptions unwinding several spans)
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break


class _NullSpan:
    """Shared no-op span: every method returns immediately."""

    __slots__ = ()

    def set(self, key, value):
        return self

    def add(self, key, delta):
        return self

    def set_duration(self, seconds):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


class NullTracer:
    """The zero-cost disabled tracer: one shared span, no recording.

    ``enabled`` is False so instrumented hot loops skip their recording
    branches entirely; code that unconditionally opens a coarse span
    (one per job, say) gets a shared no-op object.
    """

    enabled = False

    def __init__(self):
        self.metrics = NULL_REGISTRY
        self.spans: List[Span] = []
        self._span = _NullSpan()

    def span(self, name: str, category: str = "", **attrs) -> _NullSpan:
        return self._span

    def current(self) -> None:
        return None

    def finished(self):
        return []

    def roots(self):
        return []


#: Process-wide disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()
