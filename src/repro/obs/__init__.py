"""``repro.obs`` — the unified telemetry layer.

Spans (:mod:`~repro.obs.trace`), metrics (:mod:`~repro.obs.metrics`),
exporters (:mod:`~repro.obs.export`), and optimizer calibration
(:mod:`~repro.obs.calibration`) shared by the temporal engine, the
simulated cluster, TiMR, and the streaming engine. See
``docs/OBSERVABILITY.md`` for the span model and metric catalog.

Tracing is off by default everywhere: every instrumented constructor
takes ``tracer=None`` and substitutes :data:`NULL_TRACER`, whose spans
and instruments are shared no-ops, so disabled runs execute the exact
pre-instrumentation code path.
"""

from .calibration import CalibrationReport, OperatorCalibration, calibrate
from .export import (
    chrome_trace,
    render_tree,
    span_record,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "CalibrationReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OperatorCalibration",
    "Span",
    "Tracer",
    "calibrate",
    "chrome_trace",
    "render_tree",
    "span_record",
    "write_chrome_trace",
    "write_jsonl",
]
