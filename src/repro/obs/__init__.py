"""``repro.obs`` — the unified telemetry layer.

Spans (:mod:`~repro.obs.trace`), metrics (:mod:`~repro.obs.metrics`),
exporters (:mod:`~repro.obs.export`), executor overhead attribution
(:mod:`~repro.obs.attribution`), and optimizer calibration
(:mod:`~repro.obs.calibration`) shared by the temporal engine, the
simulated cluster, TiMR, and the streaming engine. See
``docs/OBSERVABILITY.md`` for the span model and metric catalog.

Tracing is off by default everywhere: every instrumented constructor
takes ``tracer=None`` and substitutes :data:`NULL_TRACER`, whose spans
and instruments are shared no-ops, so disabled runs execute the exact
pre-instrumentation code path. Tracing crosses the process boundary via
:class:`WorkerSpanRecorder` buffers shipped back with worker results and
folded in with :func:`absorb_worker_state`.
"""

from .attribution import (
    AttributionReport,
    COMPONENTS,
    TRACER_OVERHEAD_BUDGET_FACTOR,
    attribute,
    render_table,
)
from .calibration import CalibrationReport, OperatorCalibration, calibrate
from .export import (
    chrome_trace,
    render_tree,
    sim_trace_tree,
    span_record,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    WorkerSpanRecorder,
    absorb_worker_state,
)

__all__ = [
    "AttributionReport",
    "COMPONENTS",
    "CalibrationReport",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "OperatorCalibration",
    "Span",
    "TIME_BUCKETS",
    "TRACER_OVERHEAD_BUDGET_FACTOR",
    "Tracer",
    "WorkerSpanRecorder",
    "absorb_worker_state",
    "attribute",
    "calibrate",
    "chrome_trace",
    "render_table",
    "render_tree",
    "sim_trace_tree",
    "span_record",
    "write_chrome_trace",
    "write_jsonl",
]
