"""Metrics: deterministic counters, gauges, and histograms.

The registry holds only values that are pure functions of the data —
event counts, row counts, byte sizes, simulated seconds, skew ratios —
so a seeded pipeline run produces a byte-identical metrics snapshot
every time. Wall-clock durations deliberately live on *spans*
(:mod:`repro.obs.trace`), never in the registry; that split is what lets
the acceptance check "same seed ⇒ same metrics" hold while traces still
show real latencies.

Two escape hatches qualify that rule without weakening it:

* Instruments can be created with ``deterministic=False`` — for values
  that are real measurements (per-task wall durations, pipe payload
  bytes that depend on which replies survived chaos). They appear in the
  default :meth:`MetricsRegistry.snapshot` but are excluded by
  ``snapshot(deterministic_only=True)``, which is what the same-seed
  identity tests compare.
* Worker processes record into their own registry and ship its
  :meth:`~MetricsRegistry.export_state` back with results; the driver
  folds it in with :meth:`~MetricsRegistry.merge_state` in a
  deterministic order (worker id / shard order), so cross-process
  metrics stay reproducible.

Histograms use fixed bucket boundaries chosen at construction (default
:data:`DEFAULT_BUCKETS`), so bucket counts are reproducible across runs
and machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries: counts/sizes spanning one event to 10M.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    1_000_000,
    10_000_000,
)

#: Histogram boundaries for wall durations in seconds (µs to minutes).
TIME_BUCKETS: Tuple[float, ...] = (
    0.000001,
    0.00001,
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value", "deterministic")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, deterministic: bool = True):
        self.name = name
        self.labels = labels
        self.value = 0
        self.deterministic = deterministic

    def inc(self, delta=1) -> None:
        if delta < 0:
            raise ValueError("counters only go up")
        self.value += delta

    def snapshot_value(self):
        return self.value


class Gauge:
    """Last-written value (watermark lag, skew ratio, ...)."""

    __slots__ = ("name", "labels", "value", "deterministic")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems, deterministic: bool = True):
        self.name = name
        self.labels = labels
        self.value = 0
        self.deterministic = deterministic

    def set(self, value) -> None:
        self.value = value

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-boundary histogram: deterministic buckets plus sum/count."""

    __slots__ = (
        "name", "labels", "buckets", "counts", "count", "total", "deterministic",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        deterministic: bool = True,
    ):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +inf overflow
        self.count = 0
        self.total = 0
        self.deterministic = deterministic

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by (name, labels)."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[Tuple[str, str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (cls.kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[2], **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, deterministic: bool = True, **labels) -> Counter:
        return self._get(Counter, name, labels, deterministic=deterministic)

    def gauge(self, name: str, deterministic: bool = True, **labels) -> Gauge:
        return self._get(Gauge, name, labels, deterministic=deterministic)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        deterministic: bool = True,
        **labels,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels, buckets=buckets, deterministic=deterministic
        )

    def snapshot(self, deterministic_only: bool = False) -> List[dict]:
        """Every instrument as a plain dict, deterministically ordered.

        ``deterministic_only`` drops instruments created with
        ``deterministic=False`` (wall durations, chaos-dependent byte
        counts) — the view the same-seed identity suite compares.
        """
        out = []
        for (kind, name, labels) in sorted(self._instruments):
            inst = self._instruments[(kind, name, labels)]
            if deterministic_only and not inst.deterministic:
                continue
            out.append(
                {
                    "kind": kind,
                    "name": name,
                    "labels": dict(labels),
                    "value": inst.snapshot_value(),
                }
            )
        return out

    # -- cross-process shipping ----------------------------------------------

    def export_state(self) -> List[tuple]:
        """The registry as plain picklable tuples, deterministically ordered.

        Workers call this to ship their metrics back over the result
        pipe; the driver folds the state in with :meth:`merge_state`.
        Each record is ``(kind, name, labels, deterministic, payload)``
        where the payload is the counter/gauge value or, for histograms,
        ``(buckets, counts, count, total)``.
        """
        out = []
        for (kind, name, labels) in sorted(self._instruments):
            inst = self._instruments[(kind, name, labels)]
            if kind == "histogram":
                payload = (inst.buckets, tuple(inst.counts), inst.count, inst.total)
            else:
                payload = inst.value
            out.append((kind, name, labels, inst.deterministic, payload))
        return out

    def merge_state(self, state: Sequence[tuple]) -> None:
        """Fold a worker's :meth:`export_state` into this registry.

        Counters and histograms add; gauges take the shipped value (call
        in a deterministic worker order so last-write-wins is stable).
        """
        for kind, name, labels, deterministic, payload in state:
            key = (kind, name, labels)
            inst = self._instruments.get(key)
            if kind == "counter":
                if inst is None:
                    inst = Counter(name, labels, deterministic=deterministic)
                    self._instruments[key] = inst
                inst.value += payload
            elif kind == "gauge":
                if inst is None:
                    inst = Gauge(name, labels, deterministic=deterministic)
                    self._instruments[key] = inst
                inst.value = payload
            else:
                buckets, counts, count, total = payload
                if inst is None:
                    inst = Histogram(
                        name, labels, buckets=buckets, deterministic=deterministic
                    )
                    self._instruments[key] = inst
                elif inst.buckets != tuple(buckets):
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge: "
                        f"{inst.buckets} != {tuple(buckets)}"
                    )
                for i, c in enumerate(counts):
                    inst.counts[i] += c
                inst.count += count
                inst.total += total


class _NullInstrument:
    """Accepts every recording call and remembers nothing."""

    __slots__ = ()

    def inc(self, delta=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry twin of the null tracer: shared no-op instruments."""

    enabled = False

    def counter(self, name: str, deterministic: bool = True, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, deterministic: bool = True, **labels):
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        deterministic: bool = True,
        **labels,
    ):
        return _NULL_INSTRUMENT

    def snapshot(self, deterministic_only: bool = False) -> List[dict]:
        return []

    def export_state(self) -> List[tuple]:
        return []

    def merge_state(self, state) -> None:
        pass


#: Process-wide no-op registry (the ``metrics`` of :data:`NULL_TRACER`).
NULL_REGISTRY = NullRegistry()
