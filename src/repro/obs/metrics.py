"""Metrics: deterministic counters, gauges, and histograms.

The registry holds only values that are pure functions of the data —
event counts, row counts, byte sizes, simulated seconds, skew ratios —
so a seeded pipeline run produces a byte-identical metrics snapshot
every time. Wall-clock durations deliberately live on *spans*
(:mod:`repro.obs.trace`), never in the registry; that split is what lets
the acceptance check "same seed ⇒ same metrics" hold while traces still
show real latencies.

Histograms use fixed bucket boundaries chosen at construction (default
:data:`DEFAULT_BUCKETS`), so bucket counts are reproducible across runs
and machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default histogram boundaries: counts/sizes spanning one event to 10M.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1,
    2,
    5,
    10,
    20,
    50,
    100,
    200,
    500,
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    1_000_000,
    10_000_000,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, delta=1) -> None:
        if delta < 0:
            raise ValueError("counters only go up")
        self.value += delta

    def snapshot_value(self):
        return self.value


class Gauge:
    """Last-written value (watermark lag, skew ratio, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot_value(self):
        return self.value


class Histogram:
    """Fixed-boundary histogram: deterministic buckets plus sum/count."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "total")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelItems, buckets: Sequence[float] = DEFAULT_BUCKETS
    ):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +inf overflow
        self.count = 0
        self.total = 0

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot_value(self):
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {
                **{str(b): c for b, c in zip(self.buckets, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Get-or-create home of every instrument, keyed by (name, labels)."""

    enabled = True

    def __init__(self):
        self._instruments: Dict[Tuple[str, str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (cls.kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[2], **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def snapshot(self) -> List[dict]:
        """Every instrument as a plain dict, deterministically ordered."""
        out = []
        for (kind, name, labels) in sorted(self._instruments):
            inst = self._instruments[(kind, name, labels)]
            out.append(
                {
                    "kind": kind,
                    "name": name,
                    "labels": dict(labels),
                    "value": inst.snapshot_value(),
                }
            )
        return out


class _NullInstrument:
    """Accepts every recording call and remembers nothing."""

    __slots__ = ()

    def inc(self, delta=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Registry twin of the null tracer: shared no-op instruments."""

    enabled = False

    def counter(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None, **labels):
        return _NULL_INSTRUMENT

    def snapshot(self) -> List[dict]:
        return []


#: Process-wide no-op registry (the ``metrics`` of :data:`NULL_TRACER`).
NULL_REGISTRY = NullRegistry()
