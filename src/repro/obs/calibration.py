"""Optimizer calibration: estimated vs observed cardinalities.

The cost-based annotator (Section VI) picks exchange placements from
*estimated* per-node cardinalities. Once a job has actually run, the
cluster's stage reports carry the *observed* row counts — this module
joins the two into a per-fragment calibration table so the optimizer's
model can be validated, and produces a corrected
:class:`~repro.timr.optimizer.Statistics` whose source cardinalities are
the observed ones (the feedstock for adaptive re-optimization).

Estimates are recomputed per fragment with the observed sizes of that
fragment's *inputs* substituted in, so the table isolates each
fragment's own selectivity-model error instead of compounding errors
from lower stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple


@dataclass
class OperatorCalibration:
    """One fragment's estimated output cardinality vs what actually ran."""

    name: str
    key: Tuple[str, ...]
    estimated_rows: float
    observed_rows: int
    input_rows: Dict[str, int] = field(default_factory=dict)

    @property
    def ratio(self) -> Optional[float]:
        """observed / estimated; None when the estimate was zero."""
        if self.estimated_rows <= 0:
            return None
        return self.observed_rows / self.estimated_rows


@dataclass
class CalibrationReport:
    """Per-fragment calibration rows plus the corrected statistics."""

    rows: List[OperatorCalibration]

    def as_dict(self) -> dict:
        return {
            "fragments": [
                {
                    "name": r.name,
                    "key": list(r.key),
                    "estimated_rows": round(r.estimated_rows, 1),
                    "observed_rows": r.observed_rows,
                    "ratio": None if r.ratio is None else round(r.ratio, 4),
                }
                for r in self.rows
            ]
        }

    def render(self) -> str:
        """An aligned estimated-vs-observed table for the terminal."""
        header = f"{'fragment':<28} {'key':<20} {'estimated':>12} {'observed':>10} {'obs/est':>8}"
        lines = [header, "-" * len(header)]
        for r in self.rows:
            key = ",".join(r.key) if r.key else "<none>"
            ratio = f"{r.ratio:.3f}" if r.ratio is not None else "n/a"
            lines.append(
                f"{r.name:<28} {key:<20} {r.estimated_rows:>12.0f} "
                f"{r.observed_rows:>10} {ratio:>8}"
            )
        return "\n".join(lines)

    def observed_source_rows(self) -> Dict[str, int]:
        """Dataset name -> observed rows, for feeding back into Statistics."""
        out: Dict[str, int] = {}
        for r in self.rows:
            out.update(r.input_rows)
            out[r.name] = r.observed_rows
        return out

    def calibrated_statistics(self, base):
        """A copy of ``base`` Statistics with observed source cardinalities.

        Re-running :func:`repro.timr.optimizer.annotate_plan` with the
        result validates (or revises) the original exchange placement
        against reality.
        """
        return replace(
            base,
            source_rows={**base.source_rows, **self.observed_source_rows()},
        )


def calibrate(fragments, report, statistics, source_rows: Dict[str, int]) -> CalibrationReport:
    """Join fragments, their stage reports, and input sizes into a report.

    Args:
        fragments: the kept (non-folded) :class:`~repro.timr.fragments.
            Fragment` list of a TiMR run, bottom-up.
        report: the :class:`~repro.mapreduce.cost.JobReport` of that run
            (stage names ``timr.{fragment.output_name}``).
        statistics: the :class:`~repro.timr.optimizer.Statistics` the
            optimizer annotated with.
        source_rows: observed row counts of the *raw* input datasets
            (``cluster.fs.read(name).num_rows``).
    """
    from ..timr.optimizer import estimate_rows  # lazy: avoid import cycles

    observed = report.observed_cardinalities()
    known: Dict[str, int] = dict(source_rows)
    rows: List[OperatorCalibration] = []
    for fragment in fragments:
        stage_name = f"timr.{fragment.output_name}"
        if stage_name not in observed:
            continue  # stage restored from a checkpoint: nothing measured
        _, rows_out = observed[stage_name]
        input_rows = {
            name: known[name] for name in fragment.input_names if name in known
        }
        local_stats = replace(
            statistics, source_rows={**statistics.source_rows, **known}
        )
        estimates = estimate_rows(fragment.root, local_stats)
        estimated = estimates[fragment.root.node_id]
        rows.append(
            OperatorCalibration(
                name=fragment.output_name,
                key=fragment.key,
                estimated_rows=estimated,
                observed_rows=rows_out,
                input_rows=input_rows,
            )
        )
        known[fragment.output_name] = rows_out
    return CalibrationReport(rows=rows)
