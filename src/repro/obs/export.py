"""Trace and metrics exporters.

Three formats, one tracer:

* :func:`write_jsonl` — one JSON object per line (``{"type": "span"}`` /
  ``{"type": "metric"}``), the machine-readable dump CI and notebooks
  consume.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (complete ``"X"`` events on one thread, so
  nesting falls out of time containment). The file loads directly in
  ``chrome://tracing`` or https://ui.perfetto.dev.
* :func:`render_tree` — a terminal summary: the span tree with wall
  times and the most useful attributes inline.

Plus one *comparison* view: :func:`sim_trace_tree`, the canonical
deterministic form of a trace — wall times and scheduling-dependent
attributes stripped, children canonically ordered — which is what the
same-seed identity tests compare across executors and chaos runs.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional, Union

from .trace import Span, Tracer


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def span_record(span: Span) -> dict:
    """One span as a plain JSON-safe dict (the JSON-lines row)."""
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "category": span.category,
        "depth": span.depth,
        "wall_ms": round(span.wall_seconds * 1e3, 3),
        "attrs": _json_safe(span.attrs),
    }


def write_jsonl(tracer: Tracer, out: Union[str, IO[str]]) -> int:
    """Dump every finished span then every metric, one JSON doc per line.

    Returns the number of lines written. Span lines carry wall times
    (non-deterministic, observability only); metric lines are pure
    functions of the data and reproduce exactly under the same seed.
    """
    lines: List[str] = []
    for span in tracer.finished():
        lines.append(json.dumps(span_record(span), sort_keys=True))
    for metric in tracer.metrics.snapshot():
        lines.append(json.dumps({"type": "metric", **metric}, sort_keys=True))
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(out, str):
        with open(out, "w", encoding="utf-8") as fp:
            fp.write(text)
    else:
        out.write(text)
    return len(lines)


def chrome_trace(tracer: Tracer) -> dict:
    """The tracer's spans as a Chrome ``trace_event`` JSON document.

    Spans carrying a ``lane`` attribute (absorbed worker spans,
    supervision events) are routed to a per-lane ``tid`` so the viewer
    renders one timeline row per worker; everything else — the
    single-threaded driver — stays on the ``driver`` row (tid 1).
    Zero-duration spans become instant events (``"ph": "i"``), the
    markers supervision uses for kills/respawns/replays/degradations.
    Categories become the ``cat`` field for filtering/coloring.
    """
    lanes = sorted(
        {
            str(span.attrs["lane"])
            for span in tracer.finished()
            if "lane" in span.attrs
        }
        - {"driver"}  # driver-lane spans (recovery) share the driver row
    )
    tid_by_lane = {lane: tid for tid, lane in enumerate(lanes, start=2)}
    events: List[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro"},
        },
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "thread_name",
            "args": {"name": "driver"},
        },
    ]
    for lane in lanes:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid_by_lane[lane],
                "name": "thread_name",
                "args": {"name": lane},
            }
        )
    for span in tracer.finished():
        lane = span.attrs.get("lane")
        tid = tid_by_lane.get(str(lane), 1) if lane is not None else 1
        ts = round((span.start - tracer.epoch) * 1e6, 3)
        if span.end == span.start:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.category or "span",
                    "ts": ts,
                    "args": _json_safe(span.attrs),
                }
            )
        else:
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.category or "span",
                    "ts": ts,
                    "dur": round(span.wall_seconds * 1e6, 3),
                    "args": _json_safe(span.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    doc = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp)
    return len(doc["traceEvents"])


#: Attributes excluded from :func:`sim_trace_tree`: values that depend on
#: OS scheduling / which worker won a chunk, not on the data.
_SCHED_ATTRS = frozenset(
    {"lane", "worker", "recovered", "pid", "sort_seconds", "busy_seconds",
     "send_seconds"}
)


def sim_trace_tree(tracer: Tracer, exclude_categories=()) -> list:
    """The canonical deterministic view of a trace, for equality checks.

    Strips everything scheduling-dependent — wall-clock times, span ids,
    and the attributes in ``_SCHED_ATTRS`` (worker lane, recovery
    markers, measured busy/sort durations) — keeping names, categories,
    and the remaining (``sim_*``, row-count, byte-count) attributes.
    Children are ordered by their canonical JSON form, not by start
    time, so work-stealing cannot reorder the tree. Two same-seed runs
    must produce equal trees regardless of executor choice or injected
    chaos; ``exclude_categories`` drops whole subtrees (e.g.
    ``("supervision",)`` when comparing a chaos run against a clean one).
    """
    exclude = frozenset(exclude_categories)
    by_parent: dict = {}
    for span in tracer.finished():
        if span.category in exclude:
            continue
        by_parent.setdefault(span.parent_id, []).append(span)

    def canon(node: dict) -> str:
        return json.dumps(node, sort_keys=True)

    def node(span: Span) -> dict:
        return {
            "name": span.name,
            "category": span.category,
            "attrs": {
                str(k): _json_safe(v)
                for k, v in sorted(span.attrs.items())
                if k not in _SCHED_ATTRS
            },
            "children": sorted(
                (node(c) for c in by_parent.get(span.span_id, ())), key=canon
            ),
        }

    return sorted((node(r) for r in by_parent.get(None, ())), key=canon)


#: Span attributes surfaced inline by :func:`render_tree`, in this order.
_TREE_ATTRS = (
    "events_in",
    "events_out",
    "selectivity",
    "rows_in",
    "rows_out",
    "rows_mapped",
    "shuffle_bytes",
    "skew_ratio",
    "sort_seconds",
    "restarts",
    "quarantined",
    "sim_backoff_seconds",
    "resumed",
    "key",
)


def render_tree(tracer: Tracer, max_depth: Optional[int] = None) -> str:
    """An indented terminal rendering of the span tree.

    ``max_depth`` prunes the tree (0 = roots only); pruned subtrees are
    summarized as ``... (+N spans)``.
    """
    lines: List[str] = []
    by_parent = {}
    for span in tracer.finished():
        by_parent.setdefault(span.parent_id, []).append(span)

    def descendants(span: Span) -> int:
        total = 0
        for child in by_parent.get(span.span_id, ()):
            total += 1 + descendants(child)
        return total

    def visit(span: Span, depth: int):
        attrs = " ".join(
            f"{k}={span.attrs[k]}" for k in _TREE_ATTRS if k in span.attrs
        )
        label = f"{span.category}:{span.name}" if span.category else span.name
        lines.append(
            "  " * depth
            + f"{label}  {span.wall_seconds * 1e3:.1f}ms"
            + (f"  {attrs}" if attrs else "")
        )
        children = by_parent.get(span.span_id, ())
        if max_depth is not None and depth >= max_depth:
            hidden = sum(1 + descendants(c) for c in children)
            if hidden:
                lines.append("  " * (depth + 1) + f"... (+{hidden} spans)")
            return
        for child in children:
            visit(child, depth + 1)

    for root in by_parent.get(None, ()):
        visit(root, 0)
    return "\n".join(lines)
