"""Executor overhead attribution: where parallel wall time actually goes.

The parallel executors (``repro.runtime.parallel``) decompose each run's
worker-time *budget* — ``workers × wall`` seconds of capacity — into six
components, accumulated on ``ParallelStats.overhead``:

* **serialize** — time workers spend pickling results onto the pipe.
* **dispatch** — chunk handoff latency plus worker spawn/teardown: the
  gap between the call's wall window and each worker's live window.
* **compute** — task function time inside workers (the only useful part).
* **idle** — capacity nobody used: workers blocked on the queue while
  others still run, tail waves narrower than the pool.
* **merge** — driver time folding results back in order.
* **supervision** — recovery machinery: deadline sweeps, refills of lost
  chunks, respawns, plus the budget lost to killed worker lanes.

By construction the six sum to the budget (idle is the residual,
clamped at zero), so the table always covers ~100% of capacity and the
dominant *non-compute* component names the bottleneck to attack first.

:func:`attribute` turns the stats dict into an :class:`AttributionReport`;
:func:`render_table` prints it, optionally against a serial-equivalent
wall measurement (``repro profile --parallel`` runs one for you).

:data:`TRACER_OVERHEAD_BUDGET_FACTOR` is the documented ceiling on how
much slower a tracing-enabled run may be than its ``NULL_TRACER`` twin;
the self-test in ``tests/obs/test_overhead_budget.py`` enforces it so
instrumentation cannot silently eat the parallelism win it diagnoses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

#: Max slowdown factor a tracing-enabled run may show over NULL_TRACER.
#: Generous because bench queries are tiny (milliseconds), where constant
#: span overhead looms large; real workloads sit far below this.
TRACER_OVERHEAD_BUDGET_FACTOR = 5.0

#: Attribution components, in display order. ``compute`` is the useful
#: part; everything else is overhead.
COMPONENTS = ("compute", "serialize", "dispatch", "merge", "supervision", "idle")


@dataclass
class AttributionReport:
    """One run's overhead decomposition, ready to render or assert on."""

    components: Dict[str, float]  # component -> seconds
    wall_seconds: float  # parallel wall time (driver-measured)
    budget_seconds: float  # workers x wall capacity
    calls: int  # run_tasks invocations folded in
    serial_wall_seconds: Optional[float] = None  # serial-equivalent run
    #: scheduling granularity (PR 10): watermark waves executed vs
    #: parallel dispatches that carried them. dispatches == waves is the
    #: fine-grained schedule; a realized batch > 1 means wave batching
    #: amortized dispatch overhead. Zero when the run had no GroupApply
    #: wave fan-out.
    dispatches: int = 0
    waves: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(self.components.values())

    @property
    def coverage(self) -> float:
        """Fraction of the budget the components explain (~1.0 always)."""
        if self.budget_seconds <= 0:
            return 1.0
        return self.total_seconds / self.budget_seconds

    @property
    def dominant_overhead(self) -> str:
        """The largest non-compute component — the thing to fix first."""
        overheads = {k: v for k, v in self.components.items() if k != "compute"}
        if not overheads or all(v <= 0 for v in overheads.values()):
            return "none"
        return max(overheads, key=lambda k: (overheads[k], k))

    @property
    def speedup(self) -> Optional[float]:
        if self.serial_wall_seconds is None or self.wall_seconds <= 0:
            return None
        return self.serial_wall_seconds / self.wall_seconds

    def share(self, component: str) -> float:
        if self.budget_seconds <= 0:
            return 0.0
        return self.components.get(component, 0.0) / self.budget_seconds

    @property
    def realized_wave_batch(self) -> Optional[float]:
        """Average waves per dispatch (None without wave fan-out)."""
        if self.dispatches <= 0:
            return None
        return self.waves / self.dispatches


def attribute(
    overhead: Mapping[str, object],
    serial_wall_seconds: Optional[float] = None,
    dispatches: int = 0,
    waves: int = 0,
) -> AttributionReport:
    """Build a report from ``ParallelStats.overhead`` (its ``as_dict``).

    Accepts the plain-dict form so callers holding only a results
    summary (CLI, CI artifacts) can attribute without importing the
    runtime layer. Unknown keys are ignored; missing components read as
    zero. ``dispatches``/``waves`` come from the same summary's
    deterministic scheduling counters (``ParallelStats.as_dict``) and
    annotate the report with the realized wave-batch size.
    """
    components = {
        name: float(overhead.get(f"{name}_seconds", 0.0)) for name in COMPONENTS
    }
    return AttributionReport(
        components=components,
        wall_seconds=float(overhead.get("wall_seconds", 0.0)),
        budget_seconds=float(overhead.get("budget_seconds", 0.0)),
        calls=int(overhead.get("calls", 0)),
        serial_wall_seconds=serial_wall_seconds,
        dispatches=int(dispatches),
        waves=int(waves),
    )


def render_table(report: AttributionReport) -> str:
    """The attribution report as an aligned terminal table."""
    lines = [
        "overhead attribution (budget = workers x wall = "
        f"{report.budget_seconds * 1e3:.1f}ms over {report.calls} call"
        + ("s)" if report.calls != 1 else ")"),
        f"{'component':<12} {'seconds':>10} {'% budget':>9}",
    ]
    for name in COMPONENTS:
        seconds = report.components.get(name, 0.0)
        lines.append(
            f"{name:<12} {seconds * 1e3:>8.2f}ms {report.share(name) * 100:>8.1f}%"
        )
    lines.append(
        f"{'total':<12} {report.total_seconds * 1e3:>8.2f}ms "
        f"{report.coverage * 100:>8.1f}%"
    )
    lines.append(f"parallel wall: {report.wall_seconds * 1e3:.1f}ms")
    if report.serial_wall_seconds is not None:
        speedup = report.speedup or 0.0
        lines.append(
            f"serial wall:   {report.serial_wall_seconds * 1e3:.1f}ms "
            f"(speedup {speedup:.2f}x)"
        )
    lines.append(f"dominant overhead: {report.dominant_overhead}")
    batch = report.realized_wave_batch
    if batch is not None:
        lines.append(
            f"scheduling: {report.waves} wave(s) in {report.dispatches} "
            f"dispatch(es), realized batch {batch:.1f}"
        )
    lines.extend(report.notes)
    return "\n".join(lines)
