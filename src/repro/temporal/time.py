"""Application-time primitives for the temporal algebra.

The DSMS (Section II-A of the paper) reasons purely in *application time*:
timestamps are part of the event schema, and query results are a function
of those timestamps only — never of when tuples are physically processed.
We model the time axis as integer *ticks* (StreamInsight uses 100 ns
ticks; the unit is opaque to the algebra). One tick is the smallest
representable duration, so a point event occupies the lifetime
``[t, t + TICK)``.

All public helpers return plain ``int`` values so events stay cheap.
"""

from __future__ import annotations

#: Smallest representable duration; a point event lives for exactly one tick.
TICK: int = 1

#: Sentinel for "the end of time" — used for events with unbounded lifetime.
MAX_TIME: int = 2**62

#: Sentinel for "the beginning of time".
MIN_TIME: int = -(2**62)

#: Ticks per second. The reproduction uses 1 tick == 1 second, which keeps
#: synthetic log timestamps readable; nothing in the algebra depends on it.
TICKS_PER_SECOND: int = 1


def seconds(n: float) -> int:
    """Duration of ``n`` seconds, in ticks."""
    return int(n * TICKS_PER_SECOND)


def minutes(n: float) -> int:
    """Duration of ``n`` minutes, in ticks."""
    return seconds(n * 60)


def hours(n: float) -> int:
    """Duration of ``n`` hours, in ticks."""
    return minutes(n * 60)


def days(n: float) -> int:
    """Duration of ``n`` days, in ticks."""
    return hours(n * 24)


def validate_interval(start: int, end: int) -> None:
    """Raise ``ValueError`` unless ``[start, end)`` is a non-empty interval."""
    if end <= start:
        raise ValueError(f"empty or inverted lifetime [{start}, {end})")
