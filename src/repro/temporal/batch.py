"""Columnar event batches: the struct-of-arrays physical format.

The logical unit of flow in the dataflow runtime is a *batch of events*.
Until now the physical representation was always ``List[Event]`` — one
heap object plus one payload dict per event. This module provides the
columnar alternative: an :class:`EventBatch` stores the two lifetime
endpoints as packed ``array('q')`` columns and each payload key as one
named column, so the stateless hot path (Where / Project /
AlterLifetime) becomes column sweeps instead of per-event dict hops,
and a whole batch pickles as a handful of arrays instead of N objects.

Correctness never depends on which operators understand the columnar
format. The representation is *exactly* row-convertible:

* per-row payload key order is preserved via interned ``layouts``
  (distinct key tuples) plus a per-row ``layout_ids`` index, so
  ``EventBatch.from_events(events).to_events() == events`` including
  heterogeneous payloads and missing keys;
* absent keys are stored as the :data:`MISSING` sentinel and never
  surface in reconstructed payloads;
* lifetimes are plain ints in ``[MIN_TIME, MAX_TIME]``, which fits
  ``array('q')`` (both sentinels are ±2**62).

Payload immutability contract
-----------------------------

Columns may be *shared* between batches (``with_lifetimes`` reuses the
input's columns; an all-pass Where returns its input batch unchanged),
and user callables running over a columnar batch receive a
:class:`BatchRowView` — a read-only mapping over the shared columns —
instead of a private dict. User functions must therefore treat payload
arguments as immutable and return new mappings; mutating them in place
was already undefined behaviour in row mode (events are multicast to
every consumer) and is now flagged statically by the
``batch.payload-mutation`` lint rule (see docs/BATCH_FORMAT.md).
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping
from typing import Iterable, List, Sequence, Tuple

from .event import Event

__all__ = ["MISSING", "EventBatch", "BatchRowView"]


class _MissingType:
    """Singleton marking "this row has no value for this column"."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"

    def __reduce__(self):
        # pickle round-trips to the same singleton so ``is MISSING``
        # checks keep working inside forked shard workers
        return (_MissingType, ())


MISSING = _MissingType()


class EventBatch:
    """A struct-of-arrays batch of temporal events.

    Attributes:
        les / res: ``array('q')`` of lifetime endpoints, one per row.
        columns: ``{column name: list of values}``; every list has one
            slot per row, with :data:`MISSING` where the row's payload
            lacks the key. Insertion order is first-seen column order.
        layouts: interned distinct per-row key tuples (payload key
            *order* matters for exact row round-trips).
        layout_ids: ``array('i')`` mapping each row to its layout.

    Batches are immutable by contract: every transformation returns a
    new batch (possibly sharing column lists with its input), and
    nothing in the runtime writes to a column after construction.
    """

    __slots__ = ("les", "res", "columns", "layouts", "layout_ids", "_payloads")

    def __init__(self, les, res, columns, layouts, layout_ids):
        self.les = les
        self.res = res
        self.columns = columns
        self.layouts = layouts
        self.layout_ids = layout_ids
        # memoized payload_dicts() result, boxed so batches sharing the
        # same rows (with_lifetimes) also share the cache; row bridges
        # on both sides of a lifetime rewrite then materialize payload
        # dicts once, mirroring row mode's share-by-reference economics
        self._payloads = [None]

    def __getstate__(self):
        # the payload cache never crosses the pickle boundary: shard
        # workers rebuild rows on demand, and shipping cached dicts
        # would defeat the compact wire format
        return (self.les, self.res, self.columns, self.layouts, self.layout_ids)

    def __setstate__(self, state):
        self.les, self.res, self.columns, self.layouts, self.layout_ids = state
        self._payloads = [None]

    # -- construction -------------------------------------------------

    @classmethod
    def empty(cls) -> "EventBatch":
        return cls(array("q"), array("q"), {}, [], array("i"))

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "EventBatch":
        """Build a batch from events, preserving per-row payload layout."""
        les = array("q", [e.le for e in events])
        res = array("q", [e.re for e in events])
        if events:
            # single-layout fast path: real feeds are overwhelmingly
            # homogeneous, and per-column comprehensions beat the
            # per-row/per-key loop by a wide margin
            keys = tuple(events[0].payload)
            if all(tuple(e.payload) == keys for e in events):
                batch = cls(
                    les,
                    res,
                    {key: [e.payload[key] for e in events] for key in keys},
                    [keys],
                    array("i", bytes(4 * len(les))),
                )
                # the events' own payload dicts seed the row bridge —
                # the same objects row mode shares by reference
                batch._payloads[0] = [e.payload for e in events]
                return batch
        columns: dict = {}
        layouts: list = []
        layout_map: dict = {}
        layout_ids = array("i", bytes(4 * len(les)))
        width = 0
        for i, event in enumerate(events):
            payload = event.payload
            keys = tuple(payload)
            lid = layout_map.get(keys)
            if lid is None:
                lid = layout_map[keys] = len(layouts)
                layouts.append(keys)
            layout_ids[i] = lid
            for key, value in payload.items():
                col = columns.get(key)
                if col is None:
                    col = columns[key] = [MISSING] * i
                    width += 1
                col.append(value)
            if width > len(keys):
                for col in columns.values():
                    if len(col) <= i:
                        col.append(MISSING)
        batch = cls(les, res, columns, layouts, layout_ids)
        batch._payloads[0] = [e.payload for e in events]
        return batch

    @classmethod
    def from_rows(cls, times, rows, drop: str) -> "EventBatch":
        """Build a point-event batch straight from source row dicts.

        ``times`` holds one LE per row (already extracted and sorted by
        the driver); rows become point events (lifetime ``[t, t+TICK)``)
        and ``drop`` is the time column, excluded from the payload
        exactly as the row path's ``dict(row); del row[drop]`` would.
        Skipping the per-row :class:`Event` materialisation is the
        columnar feed edge's main saving.
        """
        from .time import TICK

        les = array("q", times)
        res = array("q", [t + TICK for t in times])
        if rows:
            all_keys = tuple(rows[0])
            if all(tuple(r) == all_keys for r in rows):
                keys = tuple(k for k in all_keys if k != drop)
                return cls(
                    les,
                    res,
                    {key: [r[key] for r in rows] for key in keys},
                    [keys],
                    array("i", bytes(4 * len(les))),
                )
        payloads = []
        for row in rows:
            payload = dict(row)
            del payload[drop]
            payloads.append(payload)
        return cls.from_payloads(les, res, payloads)

    @classmethod
    def from_payloads(cls, les, res, payloads: Iterable[Mapping]) -> "EventBatch":
        """Build a batch from lifetime arrays plus one payload mapping
        per row (the Project kernel's output path). ``les``/``res`` and
        the payload mappings are adopted, not copied: the mappings seed
        the row-bridge cache (exactly the objects row mode would have
        carried as ``Event.payload``), so treat them as read-only."""
        if not isinstance(payloads, list):
            payloads = list(payloads)
        if payloads:
            keys = tuple(payloads[0])
            if all(tuple(p) == keys for p in payloads):
                batch = cls(
                    les,
                    res,
                    {key: [p[key] for p in payloads] for key in keys},
                    [keys],
                    array("i", bytes(4 * len(les))),
                )
                batch._payloads[0] = payloads
                return batch
        columns: dict = {}
        layouts: list = []
        layout_map: dict = {}
        layout_ids = array("i", bytes(4 * len(les)))
        width = 0
        for i, payload in enumerate(payloads):
            keys = tuple(payload)
            lid = layout_map.get(keys)
            if lid is None:
                lid = layout_map[keys] = len(layouts)
                layouts.append(keys)
            layout_ids[i] = lid
            for key in keys:
                col = columns.get(key)
                if col is None:
                    col = columns[key] = [MISSING] * i
                    width += 1
                col.append(payload[key])
            if width > len(keys):
                for col in columns.values():
                    if len(col) <= i:
                        col.append(MISSING)
        batch = cls(les, res, columns, layouts, layout_ids)
        batch._payloads[0] = payloads
        return batch

    @classmethod
    def concat(cls, batches: Sequence["EventBatch"]) -> "EventBatch":
        """Concatenate batches into one, re-interning layouts."""
        batches = [b for b in batches if len(b)]
        if not batches:
            return cls.empty()
        if len(batches) == 1:
            return batches[0]
        les = array("q")
        res = array("q")
        columns: dict = {}
        layouts: list = []
        layout_map: dict = {}
        layout_ids = array("i")
        n = 0
        for batch in batches:
            les.extend(batch.les)
            res.extend(batch.res)
            remap = []
            for keys in batch.layouts:
                lid = layout_map.get(keys)
                if lid is None:
                    lid = layout_map[keys] = len(layouts)
                    layouts.append(keys)
                remap.append(lid)
            layout_ids.extend(remap[lid] for lid in batch.layout_ids)
            m = len(batch.les)
            for key, col in batch.columns.items():
                dest = columns.get(key)
                if dest is None:
                    dest = columns[key] = [MISSING] * n
                dest.extend(col)
            n += m
            for dest in columns.values():
                if len(dest) < n:
                    dest.extend([MISSING] * (n - len(dest)))
        return cls(les, res, columns, layouts, layout_ids)

    # -- row bridge ---------------------------------------------------

    def to_events(self) -> List[Event]:
        """Reconstruct the exact row sequence (payload key order and
        values included) this batch was built from."""
        # map() drives the construction loop at C level
        return list(map(Event, self.les, self.res, self.payload_dicts()))

    def payload_at(self, index: int) -> dict:
        """A fresh, private payload dict for one row."""
        columns = self.columns
        return {
            key: columns[key][index]
            for key in self.layouts[self.layout_ids[index]]
        }

    def payload_dicts(self) -> List[dict]:
        """One payload mapping per row, in row order.

        The result is memoized (and shared with ``with_lifetimes``
        siblings), so the mappings are *shared, not private* — the same
        read-only contract as row-mode ``Event.payload``.
        """
        cached = self._payloads[0]
        if cached is not None:
            return cached
        les, columns = self.les, self.columns
        if len(self.layouts) == 1 and les:
            # single layout: C-level column transpose beats per-row
            # dictcomps by a wide margin
            keys = self.layouts[0]
            if not keys:
                payloads = [{} for _ in les]
            else:
                payloads = [
                    dict(zip(keys, vals))
                    for vals in zip(*(columns[key] for key in keys))
                ]
        else:
            layout_cols = [
                tuple((key, columns[key]) for key in keys)
                for keys in self.layouts
            ]
            layout_ids = self.layout_ids
            payloads = [
                {key: col[i] for key, col in layout_cols[layout_ids[i]]}
                for i in range(len(les))
            ]
        self._payloads[0] = payloads
        return payloads

    def row_view(self, index: int = 0) -> "BatchRowView":
        """A reusable read-only mapping view; kernels advance ``.index``."""
        return BatchRowView(self, index)

    # -- transformations ----------------------------------------------

    def gather(self, indices: Sequence[int]) -> "EventBatch":
        """Select rows by index (the Where kernel's output path)."""
        les, res = self.les, self.res
        layout_ids = self.layout_ids
        return EventBatch(
            array("q", [les[i] for i in indices]),
            array("q", [res[i] for i in indices]),
            {key: [col[i] for i in indices] for key, col in self.columns.items()},
            self.layouts,
            array("i", [layout_ids[i] for i in indices]),
        )

    def slice(self, start: int, stop: int) -> "EventBatch":
        """Contiguous row range as a new batch (columns are copied
        slices; layouts are shared)."""
        return EventBatch(
            self.les[start:stop],
            self.res[start:stop],
            {key: col[start:stop] for key, col in self.columns.items()},
            self.layouts,
            self.layout_ids[start:stop],
        )

    def with_lifetimes(self, les, res) -> "EventBatch":
        """Same rows, new lifetime arrays (the AlterLifetime kernel's
        no-drop output path — payload columns are shared, not copied)."""
        batch = EventBatch(les, res, self.columns, self.layouts, self.layout_ids)
        batch._payloads = self._payloads  # same rows: share the dict cache
        return batch

    # -- introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self.les)

    @property
    def last_le(self) -> int:
        return self.les[-1]

    def column_names(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def __repr__(self) -> str:
        return (
            f"EventBatch({len(self)} rows, "
            f"columns={list(self.columns)!r}, layouts={len(self.layouts)})"
        )

    def __eq__(self, other):
        if not isinstance(other, EventBatch):
            return NotImplemented
        return self.to_events() == other.to_events()

    __hash__ = None


class BatchRowView:
    """Read-only ``Mapping`` view of one batch row's payload.

    Kernels allocate one view per batch and advance ``view.index``
    across rows, so black-box predicates and projection functions run
    without a per-row dict materialisation. The view is only valid
    while the kernel is positioned on the row; user functions must not
    retain it (they receive payloads as transient arguments already).
    """

    __slots__ = ("_batch", "_columns", "index")

    def __init__(self, batch: EventBatch, index: int = 0):
        self._batch = batch
        self._columns = batch.columns  # bound once: the hot lookup path
        self.index = index

    def __getitem__(self, key):
        value = self._columns[key][self.index]
        if value is MISSING:
            raise KeyError(key)
        return value

    def get(self, key, default=None):
        column = self._columns.get(key)
        if column is None:
            return default
        value = column[self.index]
        return default if value is MISSING else value

    def __contains__(self, key) -> bool:
        column = self._columns.get(key)
        return column is not None and column[self.index] is not MISSING

    def keys(self) -> Tuple[str, ...]:
        return self._batch.layouts[self._batch.layout_ids[self.index]]

    def __iter__(self):
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def items(self):
        columns = self._batch.columns
        index = self.index
        return [(key, columns[key][index]) for key in self.keys()]

    def values(self):
        columns = self._batch.columns
        index = self.index
        return [columns[key][index] for key in self.keys()]

    def copy(self) -> dict:
        return self._batch.payload_at(self.index)

    def __eq__(self, other):
        if isinstance(other, BatchRowView):
            return self.items() == other.items()
        if isinstance(other, Mapping):
            return self.copy() == dict(other)
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"BatchRowView({self.copy()!r})"


# a BatchRowView satisfies the Mapping protocol (and user code may
# reasonably isinstance-check payload arguments against it)
Mapping.register(BatchRowView)
