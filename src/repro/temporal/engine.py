"""Single-node temporal engine.

Executes a logical CQ plan over bounded streams with application-time
semantics: results are a pure function of event payloads and lifetimes,
never of physical processing order (Section III-C.1). That determinism is
what lets TiMR restart failed reducers and re-run the same queries over
offline files or live feeds with identical output.

Execution is a memoized bottom-up walk of the plan DAG: each node's
output event list is computed once and shared by all parents (Multicast
for free). Every stateful operator is freshly instantiated per run, so an
``Engine`` is reusable and plans are shareable across runs, partitions,
and processes.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, List, Optional, Union

from .event import Event, point_events
from .plan import (
    ExchangeNode,
    GroupApplyNode,
    GroupInputNode,
    PlanNode,
    SourceNode,
)
from .query import Query


class EngineStats:
    """Lightweight per-run instrumentation (drives the Fig 15 benchmark)."""

    def __init__(self):
        self.input_events = 0
        self.output_events = 0
        self.operator_events: Dict[str, int] = {}
        self.wall_seconds = 0.0

    @property
    def events_per_second(self) -> float:
        """Input events processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.input_events / self.wall_seconds


class Engine:
    """Executes CQ plans over bounded event streams."""

    def __init__(self):
        self.last_stats: Optional[EngineStats] = None

    def run(
        self,
        query: Union[Query, PlanNode],
        sources: Dict[str, Iterable],
        time_column: str = "Time",
        validate: bool = True,
    ) -> List[Event]:
        """Execute ``query`` and return its output events, LE-ordered.

        Args:
            query: a :class:`Query` or plan root.
            sources: maps source names to event lists *or* row dicts (rows
                are converted to point events on ``time_column``, exactly
                as a TiMR reducer would).
            time_column: timestamp column for row inputs.
            validate: run the static pre-flight analyzer first and refuse
                plans with error-severity findings (memoized per plan, so
                re-running a validated plan costs nothing). Pass False to
                opt out.
        """
        root = query.to_plan() if isinstance(query, Query) else query
        if validate:
            from ..analysis import validate_plan

            validate_plan(root)
        stats = EngineStats()
        start = _time.perf_counter()

        bound: Dict[str, List[Event]] = {}
        for name, data in sources.items():
            events = _as_events(data, time_column)
            events.sort(key=lambda e: e.le)
            bound[name] = events
            stats.input_events += len(events)

        cache: Dict[int, List[Event]] = {}
        output = self._evaluate(root, bound, cache, stats)
        stats.output_events = len(output)
        stats.wall_seconds = _time.perf_counter() - start
        self.last_stats = stats
        return output

    # -- internals -------------------------------------------------------------

    def _evaluate(
        self,
        node: PlanNode,
        sources: Dict[str, List[Event]],
        cache: Dict[int, List[Event]],
        stats: EngineStats,
    ) -> List[Event]:
        if node.node_id in cache:
            return cache[node.node_id]

        if isinstance(node, SourceNode):
            try:
                result = sources[node.name]
            except KeyError:
                raise KeyError(
                    f"query references source {node.name!r} but only "
                    f"{sorted(sources)} were provided"
                ) from None
        elif isinstance(node, GroupInputNode):
            raise RuntimeError(
                "GroupInputNode reached outside a GroupApply sub-plan"
            )
        elif isinstance(node, ExchangeNode):
            # Logical repartitioning is a no-op on a single node.
            result = self._evaluate(node.inputs[0], sources, cache, stats)
        elif isinstance(node, GroupApplyNode):
            child = self._evaluate(node.inputs[0], sources, cache, stats)
            runner = self._subplan_runner(node, stats)
            op = _make_group_apply(node, runner)
            result = op.apply(child)
        else:
            children = [
                self._evaluate(c, sources, cache, stats) for c in node.inputs
            ]
            op = node.make_operator()
            if len(children) == 1:
                result = op.apply(children[0])
            elif len(children) == 2:
                result = op.apply(children[0], children[1])
            else:  # pragma: no cover - no 3-input operators exist
                raise RuntimeError(f"{node!r} has {len(children)} inputs")

        stats.operator_events[node.describe()] = (
            stats.operator_events.get(node.describe(), 0) + len(result)
        )
        cache[node.node_id] = result
        return result

    def _subplan_runner(self, node: GroupApplyNode, stats: EngineStats):
        """A callable executing the GroupApply sub-plan over one group.

        A *fresh* operator chain is built per invocation (per group) by
        evaluating the sub-plan with the group-input leaf bound to the
        group's events.
        """

        def run_group(events: List[Event]) -> List[Event]:
            cache: Dict[int, List[Event]] = {node.group_input.node_id: events}
            return self._evaluate_subplan(node.subplan_root, cache, stats)

        return run_group

    def _evaluate_subplan(
        self, sub: PlanNode, cache: Dict[int, List[Event]], stats: EngineStats
    ) -> List[Event]:
        if sub.node_id in cache:
            return cache[sub.node_id]
        if isinstance(sub, SourceNode):
            raise RuntimeError(
                "GroupApply sub-plans cannot reference external sources"
            )
        if isinstance(sub, GroupApplyNode):
            child = self._evaluate_subplan(sub.inputs[0], cache, stats)
            op = _make_group_apply(sub, self._nested_runner(sub, cache, stats))
            result = op.apply(child)
        else:
            children = [self._evaluate_subplan(c, cache, stats) for c in sub.inputs]
            op = sub.make_operator()
            result = (
                op.apply(children[0])
                if len(children) == 1
                else op.apply(children[0], children[1])
            )
        cache[sub.node_id] = result
        return result

    def _nested_runner(self, node: GroupApplyNode, outer_cache, stats):
        def run_group(events: List[Event]) -> List[Event]:
            cache: Dict[int, List[Event]] = {node.group_input.node_id: events}
            return self._evaluate_subplan(node.subplan_root, cache, stats)

        return run_group


def _make_group_apply(node: GroupApplyNode, runner):
    from .operators import GroupApply

    return GroupApply(node.keys, runner)


def _as_events(data, time_column: str) -> List[Event]:
    data = list(data)
    if not data:
        return []
    if isinstance(data[0], Event):
        return data
    return point_events(data, time_column=time_column)


def run_query(
    query: Union[Query, PlanNode],
    sources: Dict[str, Iterable],
    time_column: str = "Time",
) -> List[Event]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine().run(query, sources, time_column=time_column)
