"""Single-node temporal engine: the batch driver of the shared runtime.

Executes a logical CQ plan over bounded streams with application-time
semantics: results are a pure function of event payloads and lifetimes,
never of physical processing order (Section III-C.1). That determinism is
what lets TiMR restart failed reducers and re-run the same queries over
offline files or live feeds with identical output.

Execution is a thin loop over the shared incremental runtime
(:class:`repro.runtime.Dataflow`): the engine merges all sources into one
globally LE-ordered stream, feeds it through the operator graph in
bounded batches with aligned watermarks, and flushes at end of input.
The operator objects are the *same* ones the push-based
:class:`~repro.temporal.streaming.StreamingEngine` drives one event at a
time, so batch ≡ streaming holds by construction — and working-set
memory is bounded by active-window state plus one batch, not by the
partition size (operator output logs are trimmed as consumers drain
them).

Telemetry: construct with ``Engine(tracer=...)`` (or a full
:class:`~repro.runtime.RunContext`) to record one summary span per plan
node — input/output event counts, selectivity, accumulated busy time —
under the caller's current span; inside a TiMR reducer that nests the
operator spans under the cluster's reduce-partition span automatically.
The default is the shared no-op tracer, which costs nothing.
"""

from __future__ import annotations

import heapq
import warnings
from itertools import islice
from operator import itemgetter
from typing import Dict, Iterable, List, Optional, Union

from ..runtime.context import RunContext
from ..runtime.dataflow import Dataflow
from ..runtime.parallel import (
    SERIAL,
    ParallelSafetyWarning,
    force_parallel_requested,
)
from ..runtime.racecheck import (
    RaceWarning,
    ShadowRaceChecker,
    race_check_mode,
)
from .event import Event
from .operators.base import sort_events
from .plan import (
    GroupInputNode,
    PlanNode,
    SourceNode,
    topological_order,
)
from .query import Query


class EngineStats:
    """Lightweight per-run instrumentation (drives the Fig 15 benchmark).

    ``operator_events`` is keyed by *plan path* — the node's position in
    the plan's topological order plus its operator name — so two
    identical operators in one plan (say two ``where`` nodes with the
    same label) keep separate counts. ``operator_labels`` maps each key
    back to the node's human-readable ``describe()`` text.
    """

    def __init__(self):
        self.input_events = 0
        self.output_events = 0
        self.operator_events: Dict[str, int] = {}
        self.operator_labels: Dict[str, str] = {}
        self.wall_seconds = 0.0
        #: per-worker fan-out summary of a parallel run (executor kind,
        #: workers, tasks, stolen chunks, busy seconds, plus supervision
        #: recovery counters under ``"recovery"``); None when serial
        self.parallel: Optional[dict] = None

    @property
    def events_per_second(self) -> float:
        """Input events processed per wall-clock second (0.0 if untimed)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.input_events / self.wall_seconds

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold another run's counters into this one (returns self).

        Counters are keyed by *plan path*, not operator instance, so
        stateless operator objects shared across GroupApply chains (or
        across per-worker runs of the same plan) never double-count:
        each run contributes its per-node totals exactly once, whatever
        instances computed them. Wall times add (they measure disjoint
        work); merging a stats object into itself is refused because it
        would silently double every counter.
        """
        if other is self:
            raise ValueError("cannot merge an EngineStats into itself")
        self.input_events += other.input_events
        self.output_events += other.output_events
        for key, count in other.operator_events.items():
            self.operator_events[key] = self.operator_events.get(key, 0) + count
        self.operator_labels.update(other.operator_labels)
        self.wall_seconds += other.wall_seconds
        if other.parallel is not None:
            if self.parallel is None:
                self.parallel = dict(other.parallel)
            else:
                merged = dict(self.parallel)
                for field in (
                    "calls",
                    "tasks",
                    "chunks",
                    "stolen_chunks",
                    "dispatches",
                    "waves",
                ):
                    merged[field] = merged.get(field, 0) + other.parallel.get(
                        field, 0
                    )
                merged["busy_seconds"] = round(
                    merged.get("busy_seconds", 0.0)
                    + other.parallel.get("busy_seconds", 0.0),
                    6,
                )
                ours = merged.get("recovery")
                theirs = other.parallel.get("recovery")
                if theirs and ours:
                    folded = dict(ours)
                    for field, value in theirs.items():
                        folded[field] = folded.get(field, 0) + value
                    folded["backoff_seconds"] = round(
                        folded.get("backoff_seconds", 0.0), 6
                    )
                    merged["recovery"] = folded
                elif theirs:
                    merged["recovery"] = dict(theirs)
                ours_oh = merged.get("overhead")
                theirs_oh = other.parallel.get("overhead")
                if theirs_oh and ours_oh:
                    folded = {
                        field: round(
                            ours_oh.get(field, 0) + value,
                            6 if field != "calls" else 0,
                        )
                        for field, value in theirs_oh.items()
                    }
                    folded["calls"] = int(folded.get("calls", 0))
                    merged["overhead"] = folded
                elif theirs_oh:
                    merged["overhead"] = dict(theirs_oh)
                merged.pop("workers", None)  # worker identity is per-run
                self.parallel = merged
        return self


def plan_node_keys(root: PlanNode) -> Dict[int, str]:
    """Stable per-node keys: topological position + operator name.

    Unlike ``node_id`` (a process-global counter) the topological index
    is identical across plan rebuilds, so metrics keyed this way compare
    across runs of the same query.
    """
    return {
        node.node_id: f"{i:03d}.{node.op_name}"
        for i, node in enumerate(topological_order(root))
    }


class Engine:
    """Executes CQ plans over bounded event streams (the batch driver)."""

    def __init__(self, tracer=None, *, context: Optional[RunContext] = None):
        self.context = RunContext.of(context, tracer=tracer)
        self.last_stats: Optional[EngineStats] = None
        #: RaceFinding list from the last run's ShadowRaceChecker (empty
        #: when the checker was off or found nothing)
        self.last_race_findings: List = []

    @property
    def tracer(self):
        return self.context.tracer

    def run(
        self,
        query: Union[Query, PlanNode],
        sources: Dict[str, Iterable],
        time_column: str = "Time",
        validate: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> List[Event]:
        """Execute ``query`` and return its output events, LE-ordered.

        Args:
            query: a :class:`Query` or plan root.
            sources: maps source names to event lists *or* row dicts (rows
                are converted to point events on ``time_column``, exactly
                as a TiMR reducer would).
            time_column: timestamp column for row inputs.
            validate: run the static pre-flight analyzer first and refuse
                plans with error-severity findings (memoized per plan, so
                re-running a validated plan costs nothing). ``None``
                defers to the run context (default: on).
            batch_size: events fed per dataflow round; bounds working-set
                memory together with window state. ``None`` defers to the
                run context.
        """
        root = query.to_plan() if isinstance(query, Query) else query
        context = self.context
        validating = validate if validate is not None else context.validate
        if validating:
            from ..analysis import validate_plan

            validate_plan(root)
        stats = EngineStats()
        start = context.clock()
        tracer = context.tracer
        chunk_size = batch_size if batch_size is not None else context.batch_size

        executor = context.resolve_executor()
        executor = self._parallel_gate(root, executor, validating)
        race_checker = None
        self.last_race_findings = []
        if executor is not None and executor.parallel:
            mode = race_check_mode(context)
            if mode is not None:
                race_checker = ShadowRaceChecker(
                    root, perturb=(mode == "perturb")
                )

        flow = Dataflow(
            root,
            allow_unstreamable=True,
            timed=tracer.enabled,
            # amortize GroupApply watermark waves: chains advance once
            # per threshold of fed events, not once per chunk
            group_wave_events=max(chunk_size, 4096),
            executor=executor,
            race_checker=race_checker,
            tracer=tracer,
            batch_format=context.resolve_batch_format(),
            waves_per_dispatch=context.resolve_waves_per_dispatch(),
        )
        for name in flow.source_names():
            if name not in sources:
                raise KeyError(
                    f"query references source {name!r} but only "
                    f"{sorted(sources)} were provided"
                )

        # one row list per source; conversion to events (or columnar
        # batches) happens lazily in the feed loops below
        feeds = []
        for name, data in sources.items():
            rows = data if isinstance(data, list) else list(data)
            stats.input_events += len(rows)
            if flow.has_source(name):
                feeds.append((name, rows))

        span = None
        if tracer.enabled:
            span = tracer.span("engine.run", category="engine")
            span.__enter__()
        try:
            out: List[Event] = []
            if len(feeds) == 1:
                # fast path: no cross-source merge needed
                name, rows = feeds[0]
                batches = None
                if flow.columnar and rows and not isinstance(rows[0], Event):
                    # columnar feed edge: rows become struct-of-arrays
                    # batches directly, skipping Event materialization
                    batches = _batch_stream(rows, time_column, chunk_size)
                if batches is not None:
                    for batch in batches:
                        flow.feed(name, batch)
                        flow.set_watermarks(batch.last_le)
                        out.extend(flow.advance())
                else:
                    stream = _event_stream(rows, time_column)
                    while True:
                        chunk = list(islice(stream, chunk_size))
                        if not chunk:
                            break
                        flow.feed(name, chunk)
                        flow.set_watermarks(chunk[-1].le)
                        out.extend(flow.advance())
            elif feeds:
                # merge all sources into one globally LE-ordered stream
                # of (le, slot, event); ties never compare events
                tagged = [
                    _tag_stream(_event_stream(rows, time_column), slot)
                    for slot, (_, rows) in enumerate(feeds)
                ]
                merged = heapq.merge(*tagged, key=itemgetter(0))
                names = [name for name, _ in feeds]
                while True:
                    chunk = list(islice(merged, chunk_size))
                    if not chunk:
                        break
                    per_source: Dict[int, List[Event]] = {}
                    for le, slot, event in chunk:
                        per_source.setdefault(slot, []).append(event)
                    for slot, events in per_source.items():
                        flow.feed(names[slot], events)
                    # an aligned CTI: the merged order guarantees no source
                    # will ever produce an earlier event than the chunk tail
                    flow.set_watermarks(chunk[-1][0])
                    out.extend(flow.advance())
            out.extend(flow.flush())
            output = sort_events(out)
            self._record(flow, root, stats, output, tracer)
        finally:
            flow.close()  # release persistent shard workers, if any
            if span is not None:
                span.set("input_events", stats.input_events)
                span.set("output_events", stats.output_events)
                span.__exit__(None, None, None)
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("engine.input_events").inc(stats.input_events)
            metrics.counter("engine.output_events").inc(len(output))
        stats.wall_seconds = context.clock() - start
        self.last_stats = stats
        if race_checker is not None:
            self.last_race_findings = list(race_checker.findings)
            if race_checker.findings:
                warnings.warn(
                    RaceWarning(race_checker.summary()), stacklevel=2
                )
        return output

    # -- internals -------------------------------------------------------------

    def _parallel_gate(self, root, executor, validating: bool):
        """Downgrade an unsafe parallel request to serial, with a warning.

        Runs the static parallel-safety pass only when a non-serial
        executor is in play and validation is on; ``--force-parallel`` /
        ``REPRO_FORCE_PARALLEL`` / ``RunContext(force_parallel=True)``
        skip the gate, and ``# repro: ignore[rule]`` comments suppress
        individual findings before they ever reach it.
        """
        if executor is None or not executor.parallel or not validating:
            return executor
        if force_parallel_requested(self.context):
            return executor
        from ..analysis.concurrency import blocking_findings

        blocked = blocking_findings(root, executor.kind)
        if not blocked:
            return executor
        details = "; ".join(d.format() for d in blocked[:4])
        more = len(blocked) - 4
        if more > 0:
            details += f"; ... {more} more"
        warnings.warn(
            ParallelSafetyWarning(
                f"falling back to serial execution: the {executor.kind!r} "
                f"executor is unsafe for this plan ({details}). Suppress "
                "specific findings with a '# repro: ignore[rule]' comment, "
                "or force parallel execution with --force-parallel / "
                "REPRO_FORCE_PARALLEL=1 / RunContext(force_parallel=True)."
            ),
            stacklevel=3,
        )
        return SERIAL

    def _record(self, flow, root, stats, output, tracer):
        """Fill stats and emit one summary span per operator node."""
        stats.output_events = len(output)
        if flow.parallel_stats is not None:
            stats.parallel = flow.parallel_stats.as_dict()
            recovery = flow.parallel_stats.recovery
            if tracer.enabled and recovery.any():
                # supervision activity (worker restarts, re-executed
                # chunks, degradations) is rare enough to always surface
                metrics = tracer.metrics
                for key, value in recovery.as_dict().items():
                    if value:
                        # pool worker kills make re-execution counts a
                        # race against how far the victim got, so these
                        # stay out of the deterministic snapshot
                        metrics.counter(
                            f"engine.executor_{key}", deterministic=False
                        ).inc(value)
        keys = plan_node_keys(root)
        for node, events_in, events_out, busy in flow.node_stats():
            key = keys.get(node.node_id)
            if key is None:  # a node outside the precomputed order (defensive)
                key = f"{node.node_id}.{node.op_name}"
            stats.operator_events[key] = (
                stats.operator_events.get(key, 0) + events_out
            )
            stats.operator_labels[key] = node.describe()
            if tracer.enabled and not isinstance(
                node, (SourceNode, GroupInputNode)
            ):
                with tracer.span(
                    "engine." + node.op_name,
                    category="engine",
                    node=key,
                    label=node.describe(),
                ) as span:
                    span.set("events_in", events_in)
                    span.set("events_out", events_out)
                    if events_in:
                        span.set("selectivity", round(events_out / events_in, 6))
                span.set_duration(busy)
                tracer.metrics.counter(
                    "engine.operator_events", op=key
                ).inc(events_out)


def _tag_stream(stream, slot: int):
    """Tag a source's events with its slot for the cross-source merge."""
    return ((e.le, slot, e) for e in stream)


def _batch_stream(rows: List, time_column: str, chunk_size: int):
    """Yield :class:`EventBatch` chunks straight from row dicts.

    The columnar feed edge: same sort discipline and chunk boundaries
    as :func:`_event_stream`, but each chunk is built column-wise from
    the rows without a per-row :class:`Event` in between. Returns
    ``None`` when the rows cannot take the direct path (non-integer
    time values) so the caller falls back to the event stream.
    """
    from array import array

    from .batch import EventBatch

    times = [row[time_column] for row in rows]
    try:
        array("q", times)
    except (TypeError, OverflowError):
        return None
    if any(times[i] > times[i + 1] for i in range(len(times) - 1)):
        order = sorted(range(len(rows)), key=times.__getitem__)
        rows = [rows[i] for i in order]
        times = [times[i] for i in order]

    def gen():
        for start in range(0, len(rows), chunk_size):
            stop = start + chunk_size
            yield EventBatch.from_rows(
                times[start:stop], rows[start:stop], time_column
            )

    return gen()


def _event_stream(rows: List, time_column: str):
    """Yield events in LE order, converting rows lazily.

    Sorted inputs (the common case — TiMR partitions and the generator
    both emit time order) stream through without any copy; unsorted
    inputs pay one sorted copy. Rows become point events one at a time so
    the engine never materializes a second full-partition event list.
    """
    if not rows:
        return iter(())
    if isinstance(rows[0], Event):
        if any(rows[i].le > rows[i + 1].le for i in range(len(rows) - 1)):
            rows = sorted(rows, key=lambda e: e.le)
        return iter(rows)
    # row dicts: KeyError on a missing time column, as point_events raises
    times = [row[time_column] for row in rows]
    if any(times[i] > times[i + 1] for i in range(len(times) - 1)):
        order = sorted(range(len(rows)), key=times.__getitem__)
        rows = [rows[i] for i in order]
        times = [times[i] for i in order]

    def gen():
        point = Event.point
        for t, row in zip(times, rows):
            payload = dict(row)
            del payload[time_column]
            yield point(t, payload)

    return gen()


def run_query(
    query: Union[Query, PlanNode],
    sources: Dict[str, Iterable],
    time_column: str = "Time",
) -> List[Event]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine().run(query, sources, time_column=time_column)
