"""Single-node temporal engine.

Executes a logical CQ plan over bounded streams with application-time
semantics: results are a pure function of event payloads and lifetimes,
never of physical processing order (Section III-C.1). That determinism is
what lets TiMR restart failed reducers and re-run the same queries over
offline files or live feeds with identical output.

Execution is a memoized bottom-up walk of the plan DAG: each node's
output event list is computed once and shared by all parents (Multicast
for free). Every stateful operator is freshly instantiated per run, so an
``Engine`` is reusable and plans are shareable across runs, partitions,
and processes.

Telemetry: construct with ``Engine(tracer=...)`` to record one span per
plan-node evaluation (input/output event counts, selectivity, latency)
under the caller's current span — inside a TiMR reducer that nests the
operator spans under the cluster's reduce-partition span automatically.
The default is the shared no-op tracer, which costs nothing.
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, List, Optional, Union

from ..obs.trace import NULL_TRACER
from .event import Event, point_events
from .plan import (
    ExchangeNode,
    GroupApplyNode,
    GroupInputNode,
    PlanNode,
    SourceNode,
    topological_order,
)
from .query import Query


class EngineStats:
    """Lightweight per-run instrumentation (drives the Fig 15 benchmark).

    ``operator_events`` is keyed by *plan path* — the node's position in
    the plan's topological order plus its operator name — so two
    identical operators in one plan (say two ``where`` nodes with the
    same label) keep separate counts. ``operator_labels`` maps each key
    back to the node's human-readable ``describe()`` text.
    """

    def __init__(self):
        self.input_events = 0
        self.output_events = 0
        self.operator_events: Dict[str, int] = {}
        self.operator_labels: Dict[str, str] = {}
        self.wall_seconds = 0.0

    @property
    def events_per_second(self) -> float:
        """Input events processed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.input_events / self.wall_seconds


def plan_node_keys(root: PlanNode) -> Dict[int, str]:
    """Stable per-node keys: topological position + operator name.

    Unlike ``node_id`` (a process-global counter) the topological index
    is identical across plan rebuilds, so metrics keyed this way compare
    across runs of the same query.
    """
    return {
        node.node_id: f"{i:03d}.{node.op_name}"
        for i, node in enumerate(topological_order(root))
    }


class Engine:
    """Executes CQ plans over bounded event streams."""

    def __init__(self, tracer=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.last_stats: Optional[EngineStats] = None

    def run(
        self,
        query: Union[Query, PlanNode],
        sources: Dict[str, Iterable],
        time_column: str = "Time",
        validate: bool = True,
    ) -> List[Event]:
        """Execute ``query`` and return its output events, LE-ordered.

        Args:
            query: a :class:`Query` or plan root.
            sources: maps source names to event lists *or* row dicts (rows
                are converted to point events on ``time_column``, exactly
                as a TiMR reducer would).
            time_column: timestamp column for row inputs.
            validate: run the static pre-flight analyzer first and refuse
                plans with error-severity findings (memoized per plan, so
                re-running a validated plan costs nothing). Pass False to
                opt out.
        """
        root = query.to_plan() if isinstance(query, Query) else query
        if validate:
            from ..analysis import validate_plan

            validate_plan(root)
        stats = EngineStats()
        start = _time.perf_counter()

        bound: Dict[str, List[Event]] = {}
        for name, data in sources.items():
            events = _as_events(data, time_column)
            events.sort(key=lambda e: e.le)
            bound[name] = events
            stats.input_events += len(events)

        keys = plan_node_keys(root)
        cache: Dict[int, List[Event]] = {}
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("engine.run", category="engine") as span:
                output = self._evaluate(root, bound, cache, stats, keys)
                span.set("input_events", stats.input_events)
                span.set("output_events", len(output))
            metrics = tracer.metrics
            metrics.counter("engine.input_events").inc(stats.input_events)
            metrics.counter("engine.output_events").inc(len(output))
        else:
            output = self._evaluate(root, bound, cache, stats, keys)
        stats.output_events = len(output)
        stats.wall_seconds = _time.perf_counter() - start
        self.last_stats = stats
        return output

    # -- internals -------------------------------------------------------------

    def _evaluate(
        self,
        node: PlanNode,
        sources: Dict[str, List[Event]],
        cache: Dict[int, List[Event]],
        stats: EngineStats,
        keys: Dict[int, str],
    ) -> List[Event]:
        if node.node_id in cache:
            return cache[node.node_id]

        if self.tracer.enabled and not isinstance(node, (SourceNode, GroupInputNode)):
            with self.tracer.span(
                "engine." + node.op_name,
                category="engine",
                node=keys.get(node.node_id, str(node.node_id)),
                label=node.describe(),
            ) as span:
                result = self._apply(node, sources, cache, stats, keys)
                events_in = sum(len(cache.get(c.node_id, ())) for c in node.inputs)
                span.set("events_in", events_in)
                span.set("events_out", len(result))
                if events_in:
                    span.set("selectivity", round(len(result) / events_in, 6))
            self.tracer.metrics.counter(
                "engine.operator_events",
                op=keys.get(node.node_id, str(node.node_id)),
            ).inc(len(result))
        else:
            result = self._apply(node, sources, cache, stats, keys)

        key = keys.get(node.node_id)
        if key is None:  # a node outside the precomputed order (defensive)
            key = f"{node.node_id}.{node.op_name}"
        stats.operator_events[key] = stats.operator_events.get(key, 0) + len(result)
        stats.operator_labels[key] = node.describe()
        cache[node.node_id] = result
        return result

    def _apply(
        self,
        node: PlanNode,
        sources: Dict[str, List[Event]],
        cache: Dict[int, List[Event]],
        stats: EngineStats,
        keys: Dict[int, str],
    ) -> List[Event]:
        """Compute one node's output (children first), without recording."""
        if isinstance(node, SourceNode):
            try:
                return sources[node.name]
            except KeyError:
                raise KeyError(
                    f"query references source {node.name!r} but only "
                    f"{sorted(sources)} were provided"
                ) from None
        if isinstance(node, GroupInputNode):
            raise RuntimeError(
                "GroupInputNode reached outside a GroupApply sub-plan"
            )
        if isinstance(node, ExchangeNode):
            # Logical repartitioning is a no-op on a single node.
            return self._evaluate(node.inputs[0], sources, cache, stats, keys)
        if isinstance(node, GroupApplyNode):
            child = self._evaluate(node.inputs[0], sources, cache, stats, keys)
            runner = self._subplan_runner(node, stats)
            op = _make_group_apply(node, runner)
            return op.apply(child)
        children = [
            self._evaluate(c, sources, cache, stats, keys) for c in node.inputs
        ]
        op = node.make_operator()
        if len(children) == 1:
            return op.apply(children[0])
        if len(children) == 2:
            return op.apply(children[0], children[1])
        raise RuntimeError(  # pragma: no cover - no 3-input operators exist
            f"{node!r} has {len(children)} inputs"
        )

    def _subplan_runner(self, node: GroupApplyNode, stats: EngineStats):
        """A callable executing the GroupApply sub-plan over one group.

        A *fresh* operator chain is built per invocation (per group) by
        evaluating the sub-plan with the group-input leaf bound to the
        group's events.
        """

        def run_group(events: List[Event]) -> List[Event]:
            cache: Dict[int, List[Event]] = {node.group_input.node_id: events}
            return self._evaluate_subplan(node.subplan_root, cache, stats)

        return run_group

    def _evaluate_subplan(
        self, sub: PlanNode, cache: Dict[int, List[Event]], stats: EngineStats
    ) -> List[Event]:
        if sub.node_id in cache:
            return cache[sub.node_id]
        if isinstance(sub, SourceNode):
            raise RuntimeError(
                "GroupApply sub-plans cannot reference external sources"
            )
        if isinstance(sub, GroupApplyNode):
            child = self._evaluate_subplan(sub.inputs[0], cache, stats)
            op = _make_group_apply(sub, self._nested_runner(sub, cache, stats))
            result = op.apply(child)
        else:
            children = [self._evaluate_subplan(c, cache, stats) for c in sub.inputs]
            op = sub.make_operator()
            result = (
                op.apply(children[0])
                if len(children) == 1
                else op.apply(children[0], children[1])
            )
        cache[sub.node_id] = result
        return result

    def _nested_runner(self, node: GroupApplyNode, outer_cache, stats):
        def run_group(events: List[Event]) -> List[Event]:
            cache: Dict[int, List[Event]] = {node.group_input.node_id: events}
            return self._evaluate_subplan(node.subplan_root, cache, stats)

        return run_group


def _make_group_apply(node: GroupApplyNode, runner):
    from .operators import GroupApply

    return GroupApply(node.keys, runner)


def _as_events(data, time_column: str) -> List[Event]:
    data = list(data)
    if not data:
        return []
    if isinstance(data[0], Event):
        return data
    return point_events(data, time_column=time_column)


def run_query(
    query: Union[Query, PlanNode],
    sources: Dict[str, Iterable],
    time_column: str = "Time",
) -> List[Event]:
    """One-shot convenience wrapper around :class:`Engine`."""
    return Engine().run(query, sources, time_column=time_column)
