"""Query diagnostics: the ``explain`` report.

``explain(query)`` produces a human-readable report of everything the
framework knows about a CQ before running it: the operator tree, each
operator's partitioning constraint, the plan's lifetime extent (hence
temporal-partitioning eligibility), known payload columns, whether the
plan can run on the streaming engine, and the findings of the static
pre-flight analyzer (:mod:`repro.analysis`). ``explain_timr`` extends it
with the chosen annotation and the fragment/M-R-stage breakdown.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .plan import (
    ExchangeNode,
    GroupApplyNode,
    GroupInputNode,
    PlanNode,
    SourceNode,
    render,
    subplan_extent,
    topological_order,
)
from .query import Query


def _streamable(root: PlanNode) -> Optional[str]:
    """None when streamable, else the offending operator description."""
    for node in topological_order(root):
        if node.streaming_future_extent() is None:
            return node.describe()
        if isinstance(node, GroupApplyNode):
            offender = _streamable(node.subplan_root)
            if offender is not None:
                return offender
    return None


def _batch_path(node: PlanNode) -> str:
    """One operator's physical path under the columnar batch format."""
    if isinstance(node, (SourceNode, GroupInputNode)):
        return "feeds struct-of-arrays EventBatch chunks"
    if isinstance(node, ExchangeNode):
        return "pass-through (chunks forwarded unchanged)"
    if isinstance(node, GroupApplyNode):
        return (
            "row bridge at the per-key split; shard dispatch re-packs "
            "rows as EventBatch across the process boundary"
        )
    if len(node.inputs) >= 2:
        return (
            "run-batched binary delivery "
            "(on_left_batch/on_right_batch probes)"
        )
    if node.streaming_future_extent() is None:
        return "row bridge (deferred buffering flattens chunks to rows)"
    try:
        operator = node.make_operator()
    except Exception:
        return "row bridge (per-event on_event)"
    if getattr(operator, "supports_columnar", False):
        return "columnar kernel (supports_columnar)"
    return "row bridge (per-event on_event)"


def explain(query: Union[Query, PlanNode], stats=None) -> str:
    """A multi-line report about a temporal query's execution properties.

    With ``stats`` (an :class:`~repro.temporal.engine.EngineStats` from a
    prior run, e.g. ``engine.last_stats``) the report gains a
    TRACE/METRICS section: totals, throughput, and per-operator event
    counts keyed by plan path.
    """
    root = query.to_plan() if isinstance(query, Query) else query
    lines: List[str] = ["PLAN", render(root, indent="  "), "", "PROPERTIES"]

    sources = [n for n in topological_order(root) if isinstance(n, SourceNode)]
    lines.append(f"  sources: {sorted({s.name for s in sources})}")

    cols = root.output_columns()
    lines.append(
        "  output columns: "
        + (", ".join(sorted(cols)) if cols is not None else "(unknown)")
    )

    extent = subplan_extent(root)
    if extent is None:
        lines.append("  lifetime extent: unbounded (no temporal partitioning)")
    else:
        lines.append(
            f"  lifetime extent: past={extent[0]} future={extent[1]} ticks "
            "(temporal partitioning eligible)"
        )

    constraints = []
    for node in topological_order(root):
        c = node.partition_constraint()
        if c.kind == "subset":
            constraints.append(f"{node.describe()}: key ⊆ {set(c.columns)}")
        elif c.kind == "none":
            constraints.append(f"{node.describe()}: not payload-partitionable")
    if constraints:
        lines.append("  partitioning constraints:")
        lines.extend(f"    {c}" for c in constraints)
    else:
        lines.append("  partitioning constraints: none (fully stateless)")

    offender = _streamable(root)
    if offender is None:
        lines.append("  streaming: supported (push + watermarks)")
    else:
        lines.append(f"  streaming: unsupported (opaque lifetime in {offender!r})")

    from ..analysis import STATIC_PARALLEL_RULES, analyze

    report = analyze(root)
    lines.append("")
    lines.append("LINT")
    if report.ok:
        lines.append("  no findings")
    else:
        lines.append(f"  {report.summary()}")
        lines.extend(f"  {d.format()}" for d in report.diagnostics)

    lines.append("")
    lines.append("PARALLEL-SAFETY")
    parallel = [d for d in report.diagnostics if d.rule in STATIC_PARALLEL_RULES]
    fork_only = all(
        d.rule == "parallel.fork-unsafe-capture" for d in parallel
    )
    if not parallel:
        lines.append(
            "  safe to parallelize: no shared mutable captures, "
            "fork-unsafe captures, or ambient-state reads detected"
        )
    else:
        if fork_only:
            lines.append(
                f"  thread-safe, fork-unsafe: {len(parallel)} finding(s) "
                "block the process executor only"
            )
        else:
            lines.append(
                f"  {len(parallel)} finding(s): a parallel run would fall "
                "back to serial (the safety gate)"
            )
        lines.extend(f"  {d.format()}" for d in parallel)
        lines.append(
            "  escape hatches: '# repro: ignore[rule]' on the offending "
            "operator, --force-parallel, or REPRO_FORCE_PARALLEL=1"
        )

    lines.append("")
    lines.append("BATCH")
    lines.append(
        "  row format is the default; columnar is selected per run via "
        'batch_format="columnar" or REPRO_BATCH=columnar '
        "(byte-identical output either way, docs/BATCH_FORMAT.md)"
    )
    lines.append("  per-operator physical path under columnar:")
    for node in topological_order(root):
        lines.append(f"    {node.describe()}: {_batch_path(node)}")

    if stats is not None:
        lines.append("")
        lines.append("TRACE/METRICS")
        lines.append(
            f"  input events: {stats.input_events}  "
            f"output events: {stats.output_events}"
        )
        if stats.wall_seconds > 0:
            lines.append(
                f"  wall: {stats.wall_seconds:.4f}s "
                f"({stats.events_per_second:,.0f} events/sec)"
            )
        if stats.operator_events:
            lines.append("  operator events (plan-path keyed):")
            width = max(len(k) for k in stats.operator_events)
            for key in sorted(stats.operator_events):
                label = stats.operator_labels.get(key, "")
                lines.append(
                    f"    {key:<{width}}  {stats.operator_events[key]:>8}"
                    + (f"  {label}" if label and label not in key else "")
                )
    return "\n".join(lines)


def explain_timr(
    query: Union[Query, PlanNode],
    statistics=None,
    job_name: str = "timr",
    stats=None,
) -> str:
    """``explain`` plus TiMR's annotation choice and fragment breakdown."""
    from ..timr.fragments import make_fragments
    from ..timr.optimizer import Statistics, annotate_plan
    from ..timr.compile import fold_stateless_fragments
    from .plan import ExchangeNode

    root = query.to_plan() if isinstance(query, Query) else query
    lines = [explain(root, stats=stats), "", "TIMR ANNOTATION"]
    has_hints = any(
        isinstance(n, ExchangeNode) for n in topological_order(root)
    )
    if has_hints:
        plan = root
        lines.append("  explicit .exchange() hints present; optimizer skipped")
    else:
        result = annotate_plan(root, statistics or Statistics())
        plan = result.plan
        lines.append(
            f"  optimizer chose delivery key {result.key!r} "
            f"at estimated cost {result.cost:.1f}"
        )
    fragments = make_fragments(plan, job_name)
    kept, plans = fold_stateless_fragments(fragments)
    lines.append(
        f"  fragments: {len(fragments)} "
        f"({len(fragments) - len(kept)} folded into map phases)"
    )
    lines.append("  M-R stages:")
    for fragment in kept:
        bindings, extent = plans[fragment.output_name]
        inputs = ", ".join(
            b.physical + ("*" if b.transform else "") for b in bindings
        )
        key = ",".join(fragment.key) if fragment.key else "<temporal/single>"
        lines.append(
            f"    stage {fragment.output_name}: partition by ({key}) "
            f"reading [{inputs}]  (* = folded map transform)"
        )
    return "\n".join(lines)
