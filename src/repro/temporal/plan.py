"""Logical CQ plans.

A continuous query is compiled (by the fluent builder in ``query.py``)
into a DAG of :class:`PlanNode` objects — the "CQ plan" of Section II-A.
The same plan serves three consumers:

* the single-node engine (``engine.py``) instantiates fresh stateful
  operators from it and executes;
* TiMR (``repro.timr``) annotates it with exchange operators, derives
  partitioning constraints, and cuts it into fragments;
* tests introspect it.

Nodes are immutable after construction. A node appearing as the input of
several downstream nodes *is* the Multicast of the paper: the engine
evaluates it once and shares its output.

Partitioning metadata (Section VI): every node reports a
:class:`PartitionConstraint` — which payload-column partitionings it can
execute under — and a *lifetime extent* ``(past, future)`` — how far a
node's output at time *t* can depend on input timestamps around *t*,
which TiMR's temporal partitioning uses to size span overlaps.
"""

from __future__ import annotations

import itertools
import os
import sys
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from .operators import (
    AggSpec,
    AlterLifetime,
    AntiSemiJoin,
    Project,
    SnapshotAggregate,
    SnapshotUDO,
    TemporalJoin,
    Union,
    Where,
    WindowedUDO,
    hopping_window,
    shift_lifetime,
    sliding_window,
    to_point_events,
)

_node_counter = itertools.count()

#: Framework modules whose frames are skipped when recording where a plan
#: node was constructed — the interesting frame is the *user's* call site
#: (the analyzer reports it and honours ``# repro: ignore[...]`` comments
#: found on that line). Filled in lazily because several of these modules
#: import this one.
_MACHINERY_BASENAMES = frozenset(
    {
        "plan.py",
        "query.py",
        "streamsql.py",
        "optimizer.py",
        "fragments.py",
        "compile.py",
        "runner.py",
    }
)


def _construction_site() -> Optional[Tuple[str, int]]:
    """(filename, lineno) of the nearest non-framework caller, if any."""
    frame = sys._getframe(1)
    for _ in range(12):
        frame = frame.f_back
        if frame is None:
            return None
        name = os.path.basename(frame.f_code.co_filename)
        if name not in _MACHINERY_BASENAMES:
            return (frame.f_code.co_filename, frame.f_lineno)
    return None


class PartitionConstraint:
    """Which payload partitionings an operator accepts.

    ``kind`` is one of:

    * ``"any"`` — stateless; runs correctly under any partitioning.
    * ``"subset"`` — requires the partitioning key to be a subset of
      ``columns`` (GroupApply keys or equi-join keys).
    * ``"none"`` — cannot be partitioned by any payload column (a global
      aggregate/UDO); only temporal partitioning or a single partition
      is valid.
    """

    __slots__ = ("kind", "columns")

    def __init__(self, kind: str, columns: Tuple[str, ...] = ()):
        if kind not in ("any", "subset", "none"):
            raise ValueError(f"unknown constraint kind {kind!r}")
        self.kind = kind
        self.columns = tuple(columns)

    def accepts(self, key: Tuple[str, ...]) -> bool:
        """True when partitioning by ``key`` preserves this operator's result.

        The empty key means "single partition", which every operator
        accepts.
        """
        if not key:
            return True
        if self.kind == "any":
            return True
        if self.kind == "subset":
            return set(key).issubset(self.columns)
        return False

    def __repr__(self):
        return f"PartitionConstraint({self.kind}, {self.columns})"


ANY = PartitionConstraint("any")
NONE = PartitionConstraint("none")


class PlanNode:
    """Base class for logical plan nodes."""

    #: Human-readable operator name (set by subclasses).
    op_name = "node"

    def __init__(self, inputs: Sequence["PlanNode"], label: Optional[str] = None):
        self.inputs: Tuple[PlanNode, ...] = tuple(inputs)
        self.label = label
        self.node_id = next(_node_counter)
        self.source_location = _construction_site()

    # -- metadata for TiMR ---------------------------------------------------

    def partition_constraint(self) -> PartitionConstraint:
        """Payload partitionings this node accepts (default: stateless)."""
        return ANY

    def lifetime_extent(self) -> Optional[Tuple[int, int]]:
        """(past, future) input-timestamp dependence of output at time t.

        ``None`` means unbounded (temporal partitioning is invalid below
        this node). Extents add along a root-to-leaf path.
        """
        return (0, 0)

    def output_columns(self) -> Optional[frozenset]:
        """Payload columns guaranteed on every output event, or ``None``
        when unknown (opaque projections, undeclared sources).

        The annotation optimizer uses this to avoid partitioning a
        stream on a column it does not carry. Default: pass the single
        input through; leaves and opaque transforms override.
        """
        if len(self.inputs) == 1:
            return self.inputs[0].output_columns()
        return None

    def streaming_future_extent(self):
        """How far output LEs may precede input LEs (streaming safety).

        ``None`` disables streaming for plans containing this node.
        Defaults to the future component of :meth:`lifetime_extent`;
        operators whose extent is unbounded only on the *past* side
        (count windows) override this to stay streamable.
        """
        extent = self.lifetime_extent()
        return None if extent is None else extent[1]

    # -- execution ------------------------------------------------------------

    def make_operator(self):
        """A fresh stateful operator instance (unary/binary nodes only)."""
        raise NotImplementedError(f"{type(self).__name__} has no direct operator")

    # -- plumbing --------------------------------------------------------------

    def describe(self) -> str:
        return self.label or self.op_name

    def __repr__(self):
        return f"<{type(self).__name__}#{self.node_id} {self.describe()}>"


class SourceNode(PlanNode):
    """A named input stream, optionally with a declared payload schema."""

    op_name = "source"

    def __init__(self, name: str, columns: Optional[Sequence[str]] = None):
        super().__init__((), label=name)
        self.name = name
        self.columns = tuple(columns) if columns is not None else None

    def output_columns(self):
        return frozenset(self.columns) if self.columns is not None else None


class GroupInputNode(PlanNode):
    """Placeholder leaf: the per-group sub-stream inside a GroupApply."""

    op_name = "group-input"

    def __init__(self):
        super().__init__((), label="group-input")

    def output_columns(self):
        return None  # depends on the feeding stream


class WhereNode(PlanNode):
    op_name = "where"

    def __init__(self, input_node: PlanNode, predicate, label=None, spec=None):
        super().__init__((input_node,), label)
        self.predicate = predicate
        # recognized comparison shapes — ("eq", key, value),
        # ("ge", key, value), or ("gt", key, value) — unlock a direct
        # column sweep in the columnar kernel; the spec must describe
        # ``predicate`` exactly (same contract as AlterLifetimeNode's
        # params)
        self.spec = spec

    def make_operator(self):
        return Where(self.predicate, spec=self.spec)


class ProjectNode(PlanNode):
    """Payload rewrite; declare ``columns`` so the optimizer can reason
    about partitioning keys across the (otherwise opaque) transform."""

    op_name = "project"

    def __init__(self, input_node: PlanNode, fn, label=None, columns=None):
        super().__init__((input_node,), label)
        self.fn = fn
        self.columns = tuple(columns) if columns is not None else None

    def make_operator(self):
        return Project(self.fn)

    def output_columns(self):
        return frozenset(self.columns) if self.columns is not None else None


class AlterLifetimeNode(PlanNode):
    """Lifetime rewrite; ``kind`` records the specialization for TiMR.

    Kinds: ``window`` (w), ``hop`` (w, h), ``shift`` (delta_le, delta_re),
    ``point``, ``custom`` (opaque le/re functions, unbounded extent).
    """

    op_name = "alter-lifetime"

    def __init__(self, input_node: PlanNode, kind: str, params: dict, label=None):
        super().__init__((input_node,), label)
        self.kind = kind
        self.params = dict(params)

    def make_operator(self):
        p = self.params
        if self.kind == "window":
            return sliding_window(p["w"])
        if self.kind == "hop":
            return hopping_window(p["w"], p["h"])
        if self.kind == "shift":
            return shift_lifetime(p["delta_le"], p["delta_re"])
        if self.kind == "point":
            return to_point_events()
        if self.kind == "custom":
            return AlterLifetime(p["le_fn"], p["re_fn"])
        raise ValueError(f"unknown AlterLifetime kind {self.kind!r}")

    def lifetime_extent(self):
        p = self.params
        if self.kind == "window":
            return (p["w"], 0)
        if self.kind == "hop":
            return (p["w"] + p["h"], 0)
        if self.kind == "shift":
            past = max(0, p["delta_le"], p["delta_re"])
            future = max(0, -p["delta_le"], -p["delta_re"])
            return (past, future)
        if self.kind == "point":
            return (0, 0)
        return None  # custom: opaque, assume unbounded


class CountWindowNode(PlanNode):
    """Count-based window: active set = the last n events.

    Order-sensitive across the whole stream, so not payload-partitionable
    (use it inside a GroupApply for per-key count windows) and opaque to
    temporal partitioning (an event's lifetime can span arbitrary time).
    """

    op_name = "count-window"

    def __init__(self, input_node: PlanNode, n: int, label=None):
        super().__init__((input_node,), label or f"count_window({n})")
        self.n = n

    def make_operator(self):
        from .operators import count_window

        return count_window(self.n)

    def partition_constraint(self):
        return NONE

    def lifetime_extent(self):
        return None  # an event can look back arbitrarily far in time

    def streaming_future_extent(self):
        return 0  # LEs never move: streaming-safe despite the above


class SessionWindowNode(PlanNode):
    """Gap-delimited session lifetimes; order-sensitive like count windows."""

    op_name = "session-window"

    def __init__(self, input_node: PlanNode, gap: int, label=None):
        super().__init__((input_node,), label or f"session_window({gap})")
        self.gap = gap

    def make_operator(self):
        from .operators import session_window

        return session_window(self.gap)

    def partition_constraint(self):
        return NONE

    def lifetime_extent(self):
        return None  # a session can stretch arbitrarily far back

    def streaming_future_extent(self):
        return 0  # LEs never move


class AggregateNode(PlanNode):
    """Snapshot aggregation; a *global* aggregate is not payload-partitionable."""

    op_name = "aggregate"

    def __init__(self, input_node: PlanNode, specs: Sequence[AggSpec], label=None):
        super().__init__((input_node,), label)
        self.specs = list(specs)

    def make_operator(self):
        return SnapshotAggregate(self.specs)

    def partition_constraint(self):
        return NONE

    def output_columns(self):
        return frozenset(s.into for s in self.specs)


class GroupApplyNode(PlanNode):
    """Apply ``subplan`` (rooted at a GroupInputNode) per ``keys`` group."""

    op_name = "group-apply"

    def __init__(
        self,
        input_node: PlanNode,
        keys: Sequence[str],
        subplan_root: PlanNode,
        group_input: GroupInputNode,
        label=None,
    ):
        super().__init__((input_node,), label)
        self.keys = tuple(keys)
        if not self.keys:
            raise ValueError("GroupApply requires at least one key column")
        self.subplan_root = subplan_root
        self.group_input = group_input

    def partition_constraint(self):
        return PartitionConstraint("subset", self.keys)

    def lifetime_extent(self):
        return subplan_extent(self.subplan_root)

    def output_columns(self):
        sub = self.subplan_root.output_columns()
        if sub is None:
            return None
        return sub | frozenset(self.keys)


class UnionNode(PlanNode):
    op_name = "union"

    def __init__(self, left: PlanNode, right: PlanNode, label=None):
        super().__init__((left, right), label)

    def make_operator(self):
        return Union()

    def output_columns(self):
        # a column is guaranteed only if both inputs guarantee it
        left = self.inputs[0].output_columns()
        right = self.inputs[1].output_columns()
        if left is None or right is None:
            return None
        return left & right


class TemporalJoinNode(PlanNode):
    op_name = "temporal-join"

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        on: Sequence[str],
        residual=None,
        select=None,
        label=None,
        columns=None,
    ):
        super().__init__((left, right), label)
        self.on = tuple(on)
        self.residual = residual
        self.select = select
        self.columns = tuple(columns) if columns is not None else None

    def make_operator(self):
        return TemporalJoin(self.on, residual=self.residual, select=self.select)

    def partition_constraint(self):
        return PartitionConstraint("subset", self.on)

    def output_columns(self):
        if self.columns is not None:
            return frozenset(self.columns)
        if self.select is not None:
            return None  # opaque combiner
        left = self.inputs[0].output_columns()
        right = self.inputs[1].output_columns()
        if left is None or right is None:
            return None
        return left | right


class AntiSemiJoinNode(PlanNode):
    op_name = "anti-semi-join"

    def __init__(
        self, left: PlanNode, right: PlanNode, on: Sequence[str], residual=None, label=None
    ):
        super().__init__((left, right), label)
        self.on = tuple(on)
        self.residual = residual

    def make_operator(self):
        return AntiSemiJoin(self.on, residual=self.residual)

    def partition_constraint(self):
        return PartitionConstraint("subset", self.on)

    def output_columns(self):
        return self.inputs[0].output_columns()


class WindowedUDONode(PlanNode):
    op_name = "windowed-udo"

    def __init__(self, input_node: PlanNode, w: int, h: int, fn, skip_empty=True, label=None):
        super().__init__((input_node,), label)
        self.w = w
        self.h = h
        self.fn = fn
        self.skip_empty = skip_empty

    def make_operator(self):
        return WindowedUDO(self.w, self.h, self.fn, skip_empty=self.skip_empty)

    def partition_constraint(self):
        return NONE

    def output_columns(self):
        return None

    def lifetime_extent(self):
        return (self.w + self.h, 0)


class SnapshotUDONode(PlanNode):
    op_name = "snapshot-udo"

    def __init__(self, input_node: PlanNode, fn, label=None):
        super().__init__((input_node,), label)
        self.fn = fn

    def make_operator(self):
        return SnapshotUDO(self.fn)

    def partition_constraint(self):
        return NONE

    def output_columns(self):
        return None


class ScanUDONode(PlanNode):
    """Stateful per-event fold (ScanUDO); order-sensitive, so global."""

    op_name = "scan-udo"

    def __init__(self, input_node: PlanNode, state_factory, fn, label=None):
        super().__init__((input_node,), label)
        self.state_factory = state_factory
        self.fn = fn

    def make_operator(self):
        from .operators.scan import ScanUDO

        return ScanUDO(self.state_factory, self.fn)

    def partition_constraint(self):
        return NONE

    def output_columns(self):
        return None


class ExchangeNode(PlanNode):
    """Logical repartitioning marker inserted by TiMR (Section III-A.2).

    ``key`` is the partitioning column set; the empty tuple means the
    special random partitioning and ``None`` components never occur. In
    the single-node engine an exchange is the identity.
    """

    op_name = "exchange"

    def __init__(self, input_node: PlanNode, key: Sequence[str], label=None):
        super().__init__((input_node,), label or f"exchange({','.join(key) or 'TIME'})")
        self.key = tuple(key)


# ---------------------------------------------------------------------------
# Plan rewriting
# ---------------------------------------------------------------------------


def clone_with_inputs(node: PlanNode, inputs: Sequence[PlanNode]) -> PlanNode:
    """A copy of ``node`` with different input nodes (used by TiMR rewrites)."""
    inputs = tuple(inputs)
    if isinstance(node, (SourceNode, GroupInputNode)):
        raise ValueError(f"{node!r} is a leaf; it has no inputs to replace")
    if isinstance(node, WhereNode):
        return WhereNode(inputs[0], node.predicate, node.label, node.spec)
    if isinstance(node, ProjectNode):
        return ProjectNode(inputs[0], node.fn, node.label, node.columns)
    if isinstance(node, AlterLifetimeNode):
        return AlterLifetimeNode(inputs[0], node.kind, node.params, node.label)
    if isinstance(node, CountWindowNode):
        return CountWindowNode(inputs[0], node.n, node.label)
    if isinstance(node, SessionWindowNode):
        return SessionWindowNode(inputs[0], node.gap, node.label)
    if isinstance(node, AggregateNode):
        return AggregateNode(inputs[0], node.specs, node.label)
    if isinstance(node, GroupApplyNode):
        return GroupApplyNode(
            inputs[0], node.keys, node.subplan_root, node.group_input, node.label
        )
    if isinstance(node, UnionNode):
        return UnionNode(inputs[0], inputs[1], node.label)
    if isinstance(node, TemporalJoinNode):
        return TemporalJoinNode(
            inputs[0], inputs[1], node.on, node.residual, node.select, node.label,
            node.columns,
        )
    if isinstance(node, AntiSemiJoinNode):
        return AntiSemiJoinNode(inputs[0], inputs[1], node.on, node.residual, node.label)
    if isinstance(node, WindowedUDONode):
        return WindowedUDONode(
            inputs[0], node.w, node.h, node.fn, node.skip_empty, node.label
        )
    if isinstance(node, SnapshotUDONode):
        return SnapshotUDONode(inputs[0], node.fn, node.label)
    if isinstance(node, ScanUDONode):
        return ScanUDONode(inputs[0], node.state_factory, node.fn, node.label)
    if isinstance(node, ExchangeNode):
        return ExchangeNode(inputs[0], node.key, node.label)
    raise TypeError(f"cannot clone {type(node).__name__}")


def rewrite(root: PlanNode, replacements: dict) -> PlanNode:
    """Rebuild the plan with ``replacements`` (node_id -> new node) applied.

    Unchanged subtrees are shared, and a node reachable via several paths
    is cloned once (preserving Multicast).
    """
    memo: dict = {}

    def visit(node: PlanNode) -> PlanNode:
        if node.node_id in replacements:
            return replacements[node.node_id]
        if node.node_id in memo:
            return memo[node.node_id]
        if not node.inputs:
            memo[node.node_id] = node
            return node
        new_inputs = [visit(c) for c in node.inputs]
        if all(a is b for a, b in zip(new_inputs, node.inputs)):
            new_node = node
        else:
            new_node = clone_with_inputs(node, new_inputs)
        memo[node.node_id] = new_node
        return new_node

    return visit(root)


# ---------------------------------------------------------------------------
# Plan traversal helpers
# ---------------------------------------------------------------------------


def topological_order(root: PlanNode) -> List[PlanNode]:
    """All nodes reachable from ``root``, children before parents."""
    order: List[PlanNode] = []
    seen = set()

    def visit(node: PlanNode):
        if node.node_id in seen:
            return
        seen.add(node.node_id)
        for child in node.inputs:
            visit(child)
        order.append(node)

    visit(root)
    return order


def source_nodes(root: PlanNode) -> List[SourceNode]:
    """All distinct SourceNode leaves under ``root``."""
    return [n for n in topological_order(root) if isinstance(n, SourceNode)]


def subplan_extent(root: PlanNode) -> Optional[Tuple[int, int]]:
    """Accumulated (past, future) lifetime extent of a whole plan.

    Extents add along each root-to-leaf path; the plan extent is the
    component-wise maximum over paths. ``None`` propagates (unbounded).
    """
    memo = {}

    def visit(node: PlanNode) -> Optional[Tuple[int, int]]:
        if node.node_id in memo:
            return memo[node.node_id]
        own = node.lifetime_extent()
        if own is None:
            memo[node.node_id] = None
            return None
        if not node.inputs:
            memo[node.node_id] = own
            return own
        best: Optional[Tuple[int, int]] = (0, 0)
        for child in node.inputs:
            sub = visit(child)
            if sub is None:
                best = None
                break
            best = (max(best[0], sub[0]), max(best[1], sub[1]))
        result = None if best is None else (own[0] + best[0], own[1] + best[1])
        memo[node.node_id] = result
        return result

    return visit(root)


def count_operators(root: PlanNode) -> int:
    """Number of logical operators in a plan, including sub-plans."""
    total = 0
    for node in topological_order(root):
        total += 1
        if isinstance(node, GroupApplyNode):
            total += count_operators(node.subplan_root) - 1  # exclude placeholder
    return total


def render(
    root: PlanNode,
    indent: str = "",
    annotate: Optional[Callable[[PlanNode], Iterable[str]]] = None,
) -> str:
    """A readable multi-line rendering of the plan tree (for debugging).

    ``annotate(node)`` may return extra lines attached under a node; the
    analyzer uses it to point a caret at offending operators.
    """
    lines: List[str] = []

    def visit(node: PlanNode, depth: int, printed: set):
        prefix = indent + "  " * depth
        again = " (shared)" if node.node_id in printed else ""
        lines.append(f"{prefix}{node.op_name}: {node.describe()}{again}")
        if annotate is not None:
            for note in annotate(node):
                lines.append(f"{prefix}^~~ {note}")
        if node.node_id in printed:
            return
        printed.add(node.node_id)
        if isinstance(node, GroupApplyNode):
            lines.append(f"{prefix}  [per-group subplan, keys={node.keys}]")
            visit(node.subplan_root, depth + 2, printed)
        for child in node.inputs:
            visit(child, depth + 1, printed)

    visit(root, 0, set())
    return "\n".join(lines)
