"""Events: the unit of data flowing through the temporal engine.

An event (Section II-A.1) carries a *payload* (a mapping of column name to
value) and a *control parameter*: the half-open validity interval
``[le, re)`` over which the payload contributes to query output. Point
events — instantaneous notifications such as a click — have ``re = le +
TICK``.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from .time import MAX_TIME, TICK, validate_interval

Payload = Mapping[str, Any]


class Event:
    """A payload with a validity lifetime ``[le, re)``.

    Events are immutable by convention: operators never mutate a payload
    in place, they build new ``Event`` instances. ``__slots__`` keeps the
    per-event footprint small, which matters because benchmarks push
    hundreds of thousands of events through the engine.
    """

    __slots__ = ("le", "re", "payload")

    def __init__(self, le: int, re: int, payload: Payload):
        validate_interval(le, re)
        self.le = le
        self.re = re
        self.payload = payload

    # -- constructors ------------------------------------------------------

    @classmethod
    def point(cls, t: int, payload: Payload) -> "Event":
        """An instantaneous event at time ``t`` (lifetime ``[t, t+TICK)``)."""
        return cls(t, t + TICK, payload)

    @classmethod
    def until_end_of_time(cls, t: int, payload: Payload) -> "Event":
        """An event valid from ``t`` forever (lifetime ``[t, MAX_TIME)``)."""
        return cls(t, MAX_TIME, payload)

    # -- predicates --------------------------------------------------------

    @property
    def is_point(self) -> bool:
        """True when this event occupies exactly one tick."""
        return self.re == self.le + TICK

    def active_at(self, t: int) -> bool:
        """True when ``t`` falls inside this event's lifetime."""
        return self.le <= t < self.re

    def overlaps(self, other: "Event") -> bool:
        """True when the two lifetimes share at least one tick."""
        return self.le < other.re and other.le < self.re

    # -- derivation --------------------------------------------------------

    def with_lifetime(self, le: int, re: int) -> "Event":
        """A copy of this event with a new lifetime."""
        return Event(le, re, self.payload)

    def with_payload(self, payload: Payload) -> "Event":
        """A copy of this event with a new payload."""
        return Event(self.le, self.re, payload)

    # -- plumbing ----------------------------------------------------------

    def sort_key(self):
        """Deterministic total order used when canonicalizing streams."""
        return (self.le, self.re, sorted(self.payload.items(), key=repr))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.le == other.le
            and self.re == other.re
            and dict(self.payload) == dict(other.payload)
        )

    def __hash__(self):  # pragma: no cover - events are not hashable
        raise TypeError("Event is not hashable (payloads are dicts)")

    def __repr__(self) -> str:
        re_str = "inf" if self.re >= MAX_TIME else str(self.re)
        return f"Event([{self.le},{re_str}) {dict(self.payload)!r})"


def point_events(
    rows: Iterable[Payload], time_column: str = "Time", drop_time: bool = True
) -> list:
    """Convert rows (dicts) into point events keyed on ``time_column``.

    This is exactly the row→event conversion TiMR's generated reducer
    performs (Section III-A step 4): the predefined ``Time`` column becomes
    the event timestamp and the rest of the row becomes the payload. The
    timestamp lives in the event lifetime, not the payload, so results
    are identical whether a query runs on one node or round-trips through
    M-R files (which re-derive the Time column from event LEs).

    Args:
        rows: input rows; each must contain ``time_column``.
        time_column: name of the timestamp column.
        drop_time: keep the time column out of the payload (default).
    """
    events = []
    for row in rows:
        t = row[time_column]
        if drop_time:
            payload = {k: v for k, v in row.items() if k != time_column}
        else:
            payload = row
        events.append(Event.point(t, payload))
    return events


def events_to_rows(
    events: Iterable[Event], time_column: str = "Time", re_column: Optional[str] = "_re"
) -> list:
    """Convert result events back into rows (the reducer's output side).

    The event LE is written to ``time_column``; the RE is preserved in
    ``re_column`` (pass ``None`` to drop it) so that downstream TiMR stages
    can faithfully reconstruct interval events.
    """
    rows = []
    for e in events:
        row = dict(e.payload)
        row[time_column] = e.le
        if re_column is not None:
            row[re_column] = e.re
        rows.append(row)
    return rows


def rows_to_events(
    rows: Iterable[Payload], time_column: str = "Time", re_column: str = "_re"
) -> list:
    """Inverse of :func:`events_to_rows` for intermediate TiMR stages.

    Rows carrying an ``re_column`` become interval events; rows without it
    become point events.
    """
    events = []
    for row in rows:
        t = row[time_column]
        re = row.get(re_column, t + TICK)
        payload = {k: v for k, v in row.items() if k not in (time_column, re_column)}
        events.append(Event(t, re, payload))
    return events
