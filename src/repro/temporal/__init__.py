"""``repro.temporal`` — a single-node temporal DSMS (StreamInsight stand-in).

The data model, algebra, and operator set follow Section II-A of the
paper: events with lifetimes ``[LE, RE)``, snapshot semantics, and the
operators Select/Project, AlterLifetime (windowing), snapshot aggregates,
GroupApply, Union, Multicast, TemporalJoin, AntiSemiJoin, and windowed
user-defined operators. Queries are written with the fluent LINQ-like
:class:`Query` builder and executed by :class:`Engine`.
"""

from .batch import MISSING, BatchRowView, EventBatch
from .engine import Engine, EngineStats, run_query
from .explain import explain, explain_timr
from .event import Event, events_to_rows, point_events, rows_to_events
from .query import Query
from .relation import equivalent, normalize, snapshot
from .streaming import (
    EVENT_POLICIES,
    QuarantinedEvent,
    StreamingEngine,
    StreamingUnsupported,
)
from .streamsql import StreamSQLError, parse as parse_sql, run_sql
from .time import MAX_TIME, MIN_TIME, TICK, days, hours, minutes, seconds

__all__ = [
    "BatchRowView",
    "Engine",
    "EngineStats",
    "Event",
    "EventBatch",
    "MISSING",
    "MAX_TIME",
    "MIN_TIME",
    "Query",
    "StreamSQLError",
    "EVENT_POLICIES",
    "QuarantinedEvent",
    "StreamingEngine",
    "StreamingUnsupported",
    "TICK",
    "parse_sql",
    "run_sql",
    "days",
    "equivalent",
    "explain",
    "explain_timr",
    "events_to_rows",
    "hours",
    "minutes",
    "normalize",
    "point_events",
    "rows_to_events",
    "run_query",
    "seconds",
    "snapshot",
]
