"""A StreamSQL-style textual front-end for temporal queries.

The paper's users "write CQs using languages such as StreamSQL
(StreamBase and Oracle CEP) or LINQ (StreamInsight)" (Section II-A.2).
``repro`` exposes the LINQ-like :class:`~repro.temporal.query.Query`
builder as its primary surface; this module adds a compact StreamSQL
dialect compiled onto the same logical plans, so the RunningClickCount
example reads::

    SELECT COUNT(*) AS ClickCount
    FROM logs
    WHERE StreamId = 1
    GROUP APPLY AdId
    WINDOW 6 HOURS

Supported grammar (case-insensitive keywords)::

    query     := select | select UNION query
    select    := SELECT items FROM source
                 [WHERE predicate]
                 [GROUP APPLY cols]
                 [WINDOW n unit [HOP n unit] | WINDOW n EVENTS]
    source    := name | ( query ) [AS name]
               | source JOIN source ON cols
               | source ANTI JOIN source ON cols
    items     := * | item ("," item)*
    item      := AGG "(" (col|*) ")" [AS name] | col [AS name]
    AGG       := COUNT | SUM | AVG | MIN | MAX | STDDEV
    predicate := disjunction of conjunctions of comparisons
                 (=, !=, <>, <, <=, >, >=) over columns, numbers,
                 and single-quoted strings; parentheses and NOT allowed
    unit      := TICKS | SECONDS | MINUTES | HOURS | DAYS
                 (WINDOW n EVENTS is a count window: the last n events)

Windows bind to the stream being aggregated: with GROUP APPLY the window
and aggregates run inside each group (the CQ shape of Figure 6).
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional

from .operators import AggSpec
from .query import Query
from .time import days, hours, minutes, seconds

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<string>'(?:[^']|'')*')"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*)"
    r")"
)

_KEYWORDS = {
    "select", "from", "where", "group", "apply", "window", "hop", "as",
    "and", "or", "not", "join", "anti", "on", "union", "count", "sum",
    "avg", "min", "max", "stddev",
    "ticks", "seconds", "minutes", "hours", "days",
    "second", "minute", "hour", "day", "tick",
    "events", "event",
}

_UNITS = {
    "tick": 1, "ticks": 1,
    "second": seconds(1), "seconds": seconds(1),
    "minute": minutes(1), "minutes": minutes(1),
    "hour": hours(1), "hours": hours(1),
    "day": days(1), "days": days(1),
}

_AGG_KINDS = {"count", "sum", "avg", "min", "max", "stddev"}


class StreamSQLError(ValueError):
    """Syntax or semantic error in a StreamSQL query."""


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value):
        self.kind = kind  # 'keyword' | 'ident' | 'number' | 'string' | 'op'
        self.value = value

    def __repr__(self):
        return f"{self.kind}:{self.value!r}"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise StreamSQLError(f"cannot tokenize near: {text[pos:pos + 20]!r}")
        pos = m.end()
        if m.lastgroup == "string":
            raw = m.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw))
        elif m.lastgroup == "number":
            raw = m.group("number")
            tokens.append(_Token("number", float(raw) if "." in raw else int(raw)))
        elif m.lastgroup == "ident":
            word = m.group("ident")
            if word.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", word.lower()))
            else:
                tokens.append(_Token("ident", word))
        else:
            tokens.append(_Token("op", m.group("op")))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0
        self._predicate_columns: set = set()

    # -- token plumbing ---------------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise StreamSQLError("unexpected end of query")
        self.pos += 1
        return tok

    def accept_keyword(self, *words: str) -> Optional[str]:
        tok = self.peek()
        if tok is not None and tok.kind == "keyword" and tok.value in words:
            self.pos += 1
            return tok.value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise StreamSQLError(f"expected {word.upper()!r}, found {self.peek()!r}")

    def accept_op(self, op: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "op" and tok.value == op:
            self.pos += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise StreamSQLError(f"expected {op!r}, found {self.peek()!r}")

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise StreamSQLError(f"expected identifier, found {tok!r}")
        return tok.value

    # -- grammar ---------------------------------------------------------------

    def parse_query(self) -> Query:
        q = self.parse_select()
        while self.accept_keyword("union"):
            q = q.union(self.parse_select())
        return q

    def parse_select(self) -> Query:
        self.expect_keyword("select")
        items = self.parse_items()
        self.expect_keyword("from")
        source = self.parse_source()

        predicate = None
        if self.accept_keyword("where"):
            predicate = self.parse_predicate()

        group_cols: Optional[List[str]] = None
        if self.accept_keyword("group"):
            self.expect_keyword("apply")
            group_cols = [self.expect_ident()]
            while self.accept_op(","):
                group_cols.append(self.expect_ident())

        window = hop = count_n = None
        if self.accept_keyword("window"):
            window, count_n = self.parse_window_spec()
            if count_n is None and self.accept_keyword("hop"):
                hop = self.parse_duration()

        return self.build(source, items, predicate, group_cols, window, hop, count_n)

    def parse_items(self):
        if self.accept_op("*"):
            return "*"
        items = [self.parse_item()]
        while self.accept_op(","):
            items.append(self.parse_item())
        return items

    def parse_item(self):
        tok = self.peek()
        if tok is not None and tok.kind == "keyword" and tok.value in _AGG_KINDS:
            self.next()
            kind = tok.value
            self.expect_op("(")
            if self.accept_op("*"):
                column = None
            else:
                column = self.expect_ident()
            self.expect_op(")")
            alias = kind.capitalize()
            if self.accept_keyword("as"):
                alias = self.expect_ident()
            if kind != "count" and column is None:
                raise StreamSQLError(f"{kind.upper()} requires a column")
            return ("agg", kind, column, alias)
        column = self.expect_ident()
        alias = column
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        return ("col", column, alias)

    def parse_source(self) -> Query:
        source = self.parse_primary_source()
        while True:
            if self.accept_keyword("join"):
                other = self.parse_primary_source()
                self.expect_keyword("on")
                cols = [self.expect_ident()]
                while self.accept_op(","):
                    cols.append(self.expect_ident())
                source = source.temporal_join(other, on=cols)
            elif self.accept_keyword("anti"):
                self.expect_keyword("join")
                other = self.parse_primary_source()
                self.expect_keyword("on")
                cols = [self.expect_ident()]
                while self.accept_op(","):
                    cols.append(self.expect_ident())
                source = source.anti_semi_join(other, on=cols)
            else:
                return source

    def parse_primary_source(self) -> Query:
        if self.accept_op("("):
            q = self.parse_query()
            self.expect_op(")")
            if self.accept_keyword("as"):
                self.expect_ident()  # aliases are cosmetic in this dialect
            return q
        tok = self.next()
        if tok.kind != "ident":
            raise StreamSQLError(f"expected stream name, found {tok!r}")
        return Query.source(tok.value)

    def parse_duration(self) -> int:
        tok = self.next()
        if tok.kind != "number":
            raise StreamSQLError(f"expected a number, found {tok!r}")
        unit_tok = self.next()
        if unit_tok.kind != "keyword" or unit_tok.value not in _UNITS:
            raise StreamSQLError(f"expected a time unit, found {unit_tok!r}")
        return int(tok.value * _UNITS[unit_tok.value])

    def parse_window_spec(self):
        """WINDOW n <time unit> -> time window; WINDOW n EVENTS -> count."""
        tok = self.next()
        if tok.kind != "number":
            raise StreamSQLError(f"expected a number, found {tok!r}")
        unit_tok = self.next()
        if unit_tok.kind == "keyword" and unit_tok.value in ("events", "event"):
            return None, int(tok.value)
        if unit_tok.kind != "keyword" or unit_tok.value not in _UNITS:
            raise StreamSQLError(f"expected a time unit, found {unit_tok!r}")
        return int(tok.value * _UNITS[unit_tok.value]), None

    # -- predicates ---------------------------------------------------------------

    def parse_predicate(self) -> Callable[[dict], bool]:
        self._predicate_columns = set()
        fn = self.parse_or()
        # Tell the static analyzer which payload columns this predicate
        # reads — closure-built lambdas hide them from bytecode scans.
        fn._repro_reads = frozenset(self._predicate_columns)
        return fn

    def parse_or(self):
        terms = [self.parse_and()]
        while self.accept_keyword("or"):
            terms.append(self.parse_and())
        if len(terms) == 1:
            return terms[0]
        return lambda p, _t=tuple(terms): any(t(p) for t in _t)

    def parse_and(self):
        terms = [self.parse_comparison()]
        while self.accept_keyword("and"):
            terms.append(self.parse_comparison())
        if len(terms) == 1:
            return terms[0]
        return lambda p, _t=tuple(terms): all(t(p) for t in _t)

    def parse_comparison(self):
        if self.accept_keyword("not"):
            inner = self.parse_comparison()
            return lambda p, _i=inner: not _i(p)
        if self.accept_op("("):
            inner = self.parse_or()
            self.expect_op(")")
            return inner
        left = self.parse_operand()
        op_tok = self.next()
        if op_tok.kind != "op" or op_tok.value not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise StreamSQLError(f"expected a comparison operator, found {op_tok!r}")
        right = self.parse_operand()
        op = op_tok.value

        def compare(p, _l=left, _r=right, _op=op):
            lv, rv = _l(p), _r(p)
            if _op == "=":
                return lv == rv
            if _op in ("!=", "<>"):
                return lv != rv
            if _op == "<":
                return lv < rv
            if _op == "<=":
                return lv <= rv
            if _op == ">":
                return lv > rv
            return lv >= rv

        return compare

    def parse_operand(self):
        tok = self.next()
        if tok.kind == "ident":
            name = tok.value
            self._predicate_columns.add(name)
            return lambda p, _n=name: p[_n]
        if tok.kind in ("number", "string"):
            value = tok.value
            return lambda p, _v=value: _v
        raise StreamSQLError(f"expected column or literal, found {tok!r}")

    # -- plan construction -------------------------------------------------------------

    def build(
        self, source, items, predicate, group_cols, window, hop, count_n=None
    ) -> Query:
        q = source
        if predicate is not None:
            q = q.where(predicate)

        aggs = [i for i in items if items != "*" and i[0] == "agg"] if items != "*" else []
        plain = [i for i in items if items != "*" and i[0] == "col"] if items != "*" else []

        if aggs and plain:
            raise StreamSQLError(
                "mixing aggregates and plain columns is not supported; plain "
                "columns come back automatically as GROUP APPLY keys"
            )

        def windowed(stream: Query) -> Query:
            if count_n is not None:
                return stream.count_window(count_n)
            if window is None:
                return stream
            if hop is not None:
                return stream.hopping_window(window, hop)
            return stream.window(window)

        if aggs:
            specs = [AggSpec(kind, alias, column) for _, kind, column, alias in aggs]

            def agg_subplan(g: Query) -> Query:
                return windowed(g).aggregate(*specs)

            if group_cols:
                return q.group_apply(group_cols, agg_subplan)
            return agg_subplan(q)

        if group_cols:
            raise StreamSQLError("GROUP APPLY requires at least one aggregate")
        if window is not None or count_n is not None:
            q = windowed(q)
        if items == "*":
            return q
        renames = [(col, alias) for _, col, alias in plain]
        return q.project(
            lambda p, _r=tuple(renames): {alias: p[col] for col, alias in _r},
            label="select-list",
        )


def parse(sql: str) -> Query:
    """Compile a StreamSQL string into a :class:`Query`."""
    parser = _Parser(_tokenize(sql))
    query = parser.parse_query()
    if parser.peek() is not None:
        raise StreamSQLError(f"unexpected trailing input: {parser.peek()!r}")
    return query


def run_sql(sql: str, sources, time_column: str = "Time"):
    """Parse and immediately execute a StreamSQL query."""
    from .engine import run_query

    return run_query(parse(sql), sources, time_column=time_column)
