"""Plan visualization: Graphviz DOT export for CQ plans and fragments.

``to_dot`` renders a logical plan (annotated or not) as a DOT digraph —
exchanges are drawn as diamonds with their partition keys, GroupApply
sub-plans as dashed clusters — handy when debugging TiMR annotations.
"""

from __future__ import annotations

from typing import List, Union

from .plan import ExchangeNode, GroupApplyNode, PlanNode, SourceNode, topological_order
from .query import Query


def _label(node: PlanNode) -> str:
    text = node.describe().replace('"', "'")
    return f"{node.op_name}\\n{text}" if text != node.op_name else node.op_name


def _shape(node: PlanNode) -> str:
    if isinstance(node, ExchangeNode):
        return "diamond"
    if isinstance(node, SourceNode):
        return "cylinder"
    return "box"


def to_dot(query: Union[Query, PlanNode], name: str = "plan") -> str:
    """A Graphviz DOT rendering of the plan (GroupApply bodies inlined)."""
    root = query.to_plan() if isinstance(query, Query) else query
    lines: List[str] = [f"digraph {name} {{", "  rankdir=BT;"]
    emitted = set()
    cluster_counter = [0]

    def emit(node: PlanNode, indent: str = "  "):
        if node.node_id in emitted:
            return
        emitted.add(node.node_id)
        lines.append(
            f'{indent}n{node.node_id} [label="{_label(node)}", shape={_shape(node)}];'
        )
        if isinstance(node, GroupApplyNode):
            cluster_counter[0] += 1
            lines.append(f"{indent}subgraph cluster_{cluster_counter[0]} {{")
            lines.append(f'{indent}  label="per-group: {",".join(node.keys)}";')
            lines.append(f"{indent}  style=dashed;")
            for sub in topological_order(node.subplan_root):
                emit(sub, indent + "  ")
            lines.append(f"{indent}}}")
            for sub in topological_order(node.subplan_root):
                for child in sub.inputs:
                    lines.append(f"{indent}n{child.node_id} -> n{sub.node_id};")
            lines.append(
                f"{indent}n{node.subplan_root.node_id} -> n{node.node_id} [style=dashed];"
            )
        for child in node.inputs:
            emit(child, indent)
            lines.append(f"{indent}n{child.node_id} -> n{node.node_id};")

    emit(root)
    lines.append("}")
    return "\n".join(lines)
