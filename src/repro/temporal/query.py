"""Fluent, LINQ-like query builder.

Users write temporal analytics as declarative, scale-out-agnostic CQs
(Section III, step 1). The paper's running example::

    var clickCount = from e in inputStream
                     where e.StreamId == 1
                     group e by e.AdId into grp
                     from w in grp.SlidingWindow(TimeSpan.FromHours(6))
                     select new Output { ClickCount = w.Count(), .. };

reads almost identically here::

    click_count = (
        Query.source("input")
        .where(lambda e: e["StreamId"] == 1)
        .group_apply("AdId", lambda g: g.window(hours(6)).count(into="ClickCount"))
    )

A :class:`Query` wraps a plan node; every method returns a new Query, so
queries compose and can be multicast (use one Query as input to several
others). ``.to_plan()`` yields the logical plan consumed by the engine
and by TiMR.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union as TypingUnion

from .operators import AggSpec
from .plan import (
    AggregateNode,
    AlterLifetimeNode,
    AntiSemiJoinNode,
    GroupApplyNode,
    GroupInputNode,
    PlanNode,
    ProjectNode,
    SnapshotUDONode,
    SourceNode,
    TemporalJoinNode,
    UnionNode,
    WhereNode,
    WindowedUDONode,
)


class Query:
    """A composable temporal query (wraps a logical plan node)."""

    def __init__(self, node: PlanNode):
        self._node = node

    # -- roots ----------------------------------------------------------------

    @staticmethod
    def source(name: str, columns: Optional[Sequence[str]] = None) -> "Query":
        """A named input stream (bound to events at execution time).

        Declaring ``columns`` (the payload schema) lets TiMR's optimizer
        reject partitioning keys the stream does not carry.
        """
        return Query(SourceNode(name, columns))

    # -- stateless ------------------------------------------------------------

    def where(
        self,
        predicate: Callable[[dict], bool],
        label: str = None,
        spec: tuple = None,
    ) -> "Query":
        """Keep events whose payload satisfies ``predicate``.

        ``spec`` optionally names a recognized comparison shape —
        ``("eq", key, value)``, ``("ge", key, value)``, or
        ``("gt", key, value)`` — that must describe ``predicate``
        exactly; the columnar kernel then sweeps the named column
        directly instead of calling the predicate per row. Prefer
        :meth:`where_equals` / :meth:`where_greater`, which build both
        halves from one statement.
        """
        return Query(WhereNode(self._node, predicate, label, spec))

    def where_equals(self, key: str, value, label: str = None) -> "Query":
        """Keep events whose payload has ``p[key] == value``."""
        return self.where(
            lambda p, _k=key, _v=value: p[_k] == _v,
            label=label,
            spec=("eq", key, value),
        )

    def where_greater(self, key: str, value, label: str = None) -> "Query":
        """Keep events whose payload has ``p[key] > value``."""
        return self.where(
            lambda p, _k=key, _v=value: p[_k] > _v,
            label=label,
            spec=("gt", key, value),
        )

    def project(
        self,
        fn: Callable[[dict], dict],
        label: str = None,
        columns: Optional[Sequence[str]] = None,
    ) -> "Query":
        """Rewrite payloads with ``fn``; declare output ``columns`` when
        known so scale-out partitioning can see through the transform."""
        return Query(ProjectNode(self._node, fn, label, columns))

    def select_columns(self, *columns: str) -> "Query":
        """Keep only the named payload columns."""
        cols = tuple(columns)
        return self.project(
            lambda p, _cols=cols: {c: p[c] for c in _cols},
            label=f"select({','.join(cols)})",
            columns=cols,
        )

    # -- windowing (AlterLifetime) ---------------------------------------------

    def window(self, w: int) -> "Query":
        """Sliding window: events stay active for ``w`` ticks."""
        return Query(AlterLifetimeNode(self._node, "window", {"w": w}, f"window({w})"))

    def hopping_window(self, w: int, h: int) -> "Query":
        """Hopping window of width ``w`` advancing every ``h`` ticks."""
        return Query(
            AlterLifetimeNode(self._node, "hop", {"w": w, "h": h}, f"hop({w},{h})")
        )

    def shift(self, delta_le: int, delta_re: Optional[int] = None) -> "Query":
        """Shift lifetimes (e.g. ``shift(-d, 0)`` extends LE ``d`` into the past)."""
        if delta_re is None:
            delta_re = delta_le
        return Query(
            AlterLifetimeNode(
                self._node,
                "shift",
                {"delta_le": delta_le, "delta_re": delta_re},
                f"shift({delta_le},{delta_re})",
            )
        )

    def count_window(self, n: int) -> "Query":
        """Keep the last ``n`` events active (Figure 3's count window)."""
        from .plan import CountWindowNode

        return Query(CountWindowNode(self._node, n))

    def session_window(self, gap: int) -> "Query":
        """Events stay active for their whole gap-delimited session."""
        from .plan import SessionWindowNode

        return Query(SessionWindowNode(self._node, gap))

    def to_points(self) -> "Query":
        """Collapse every event to a point event at its LE."""
        return Query(AlterLifetimeNode(self._node, "point", {}, "to_points"))

    def alter_lifetime(self, le_fn, re_fn, label: str = None) -> "Query":
        """Fully custom lifetime rewrite (opaque to temporal partitioning)."""
        return Query(
            AlterLifetimeNode(
                self._node, "custom", {"le_fn": le_fn, "re_fn": re_fn}, label
            )
        )

    # -- snapshot aggregation ---------------------------------------------------

    def aggregate(self, *specs: AggSpec) -> "Query":
        """Compute several snapshot aggregates at once."""
        return Query(AggregateNode(self._node, specs))

    def count(self, into: str = "Count") -> "Query":
        """Snapshot count (pair with ``window`` for windowed counts)."""
        return self.aggregate(AggSpec("count", into))

    def sum(self, column: str, into: str = "Sum") -> "Query":
        return self.aggregate(AggSpec("sum", into, column))

    def avg(self, column: str, into: str = "Avg") -> "Query":
        return self.aggregate(AggSpec("avg", into, column))

    def min(self, column: str, into: str = "Min") -> "Query":
        return self.aggregate(AggSpec("min", into, column))

    def max(self, column: str, into: str = "Max") -> "Query":
        return self.aggregate(AggSpec("max", into, column))

    def topk(self, column: str, k: int = 3, into: str = "TopK") -> "Query":
        """The k largest values of ``column`` per snapshot (descending)."""
        return self.aggregate(AggSpec("topk", into, column, k=k))

    def stddev(self, column: str, into: str = "StdDev") -> "Query":
        return self.aggregate(AggSpec("stddev", into, column))

    # -- grouping ----------------------------------------------------------------

    def group_apply(
        self,
        keys: TypingUnion[str, Sequence[str]],
        subquery: Callable[["Query"], "Query"],
        label: str = None,
    ) -> "Query":
        """Apply ``subquery`` independently to each group of ``keys``.

        ``subquery`` receives a Query representing the per-group
        sub-stream and returns the per-group result; group key columns are
        re-attached to every output payload.
        """
        if isinstance(keys, str):
            keys = (keys,)
        group_input = GroupInputNode()
        sub_root = subquery(Query(group_input))._node
        return Query(GroupApplyNode(self._node, keys, sub_root, group_input, label))

    # -- binary -------------------------------------------------------------------

    def union(self, other: "Query") -> "Query":
        """Bag union with another stream."""
        return Query(UnionNode(self._node, other._node))

    def temporal_join(
        self,
        other: "Query",
        on: TypingUnion[str, Sequence[str]],
        residual: Callable[[dict, dict], bool] = None,
        select: Callable[[dict, dict], dict] = None,
        label: str = None,
        columns: Optional[Sequence[str]] = None,
    ) -> "Query":
        """Join with ``other`` on equal columns and overlapping lifetimes.

        ``columns`` declares the output schema when ``select`` is custom.
        """
        if isinstance(on, str):
            on = (on,)
        return Query(
            TemporalJoinNode(
                self._node, other._node, on, residual, select, label, columns
            )
        )

    def anti_semi_join(
        self,
        other: "Query",
        on: TypingUnion[str, Sequence[str]],
        residual: Callable[[dict, dict], bool] = None,
        label: str = None,
    ) -> "Query":
        """Drop point events covered by a matching event of ``other``."""
        if isinstance(on, str):
            on = (on,)
        return Query(AntiSemiJoinNode(self._node, other._node, on, residual, label))

    # -- scale-out hints -----------------------------------------------------------

    def exchange(self, *columns: str) -> "Query":
        """Explicit repartitioning hint for TiMR (Section III-A.2).

        ``exchange("AdId")`` marks that the stream should be partitioned
        by AdId from this point up. ``exchange()`` (no columns) marks
        temporal/single partitioning. The single-node engine treats it as
        the identity.
        """
        from .plan import ExchangeNode

        return Query(ExchangeNode(self._node, columns))

    # -- user-defined operators ------------------------------------------------------

    def udo_hopping(
        self,
        w: int,
        h: int,
        fn: Callable[[list, int], Iterable[dict]],
        skip_empty: bool = True,
        label: str = None,
    ) -> "Query":
        """Run ``fn(window_payloads, boundary)`` at every hop boundary."""
        return Query(WindowedUDONode(self._node, w, h, fn, skip_empty, label))

    def udo_snapshot(
        self, fn: Callable[[list], Iterable[dict]], label: str = None
    ) -> "Query":
        """Run ``fn(active_payloads)`` at every snapshot."""
        return Query(SnapshotUDONode(self._node, fn, label))

    def udo_scan(
        self,
        state_factory: Callable[[], object],
        fn: Callable[[object, dict, int], Iterable[dict]],
        label: str = None,
    ) -> "Query":
        """Fold ``fn(state, payload, le)`` over the stream (online UDO)."""
        from .plan import ScanUDONode

        return Query(ScanUDONode(self._node, state_factory, fn, label))

    # -- plumbing -----------------------------------------------------------------------

    def to_plan(self) -> PlanNode:
        """The logical plan root for this query."""
        return self._node

    def __repr__(self):
        return f"Query({self._node!r})"
