"""Operator framework for the single-node temporal engine.

Operators consume events in non-decreasing LE order and produce events.
Each operator is *incremental*: it exposes ``on_event`` (one event in,
zero or more events out) and ``on_flush`` (drain buffered state at end of
input). The batch helper ``apply`` drives the incremental interface over
a whole stream and re-establishes LE order on the output — exactly what
TiMR's embedded-DSMS reducer does with a partition of offline rows, while
the same ``on_event`` path remains usable against a live feed.

Binary operators additionally define how their two inputs are merged into
a single time-ordered sequence (``RIGHT_FIRST`` tie-breaking, so that at
equal timestamps reference data on the right input is visible to probes
on the left — e.g. a bot interval starting at *t* already filters a click
at *t*).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..event import Event

#: Tag for events arriving on the left input of a binary operator.
LEFT = 0
#: Tag for events arriving on the right input of a binary operator.
RIGHT = 1


def sort_events(events: List[Event]) -> List[Event]:
    """Sort events by LE (stable). Timsort makes mostly-sorted output cheap."""
    events.sort(key=lambda e: e.le)
    return events


class UnaryOperator:
    """Base class for one-input operators."""

    #: True when ``on_batch`` accepts a columnar ``EventBatch`` and (for
    #: stateless operators) returns one. Operators that leave this False
    #: are bridged by the runtime: it converts columnar chunks back to
    #: ``Event`` rows before calling ``on_batch``, so correctness never
    #: depends on which operators were converted (docs/BATCH_FORMAT.md).
    supports_columnar = False

    def on_event(self, event: Event) -> Iterable[Event]:
        """Process one input event (arriving in LE order); yield outputs."""
        raise NotImplementedError

    def on_batch(self, events: Sequence[Event]) -> List[Event]:
        """Process a chunk of LE-ordered events (the batch-driver path).

        Semantically identical to calling ``on_event`` per event —
        stateless operators override this with a bulk fast path.
        """
        out: List[Event] = []
        for e in events:
            out.extend(self.on_event(e))
        return out

    def on_flush(self) -> Iterable[Event]:
        """Drain any buffered state at end of input."""
        return ()

    def on_watermark(self, w: int) -> Iterable[Event]:
        """No further input with LE < ``w`` will arrive: emit what is final.

        Used by the streaming engine (CTI propagation). The default emits
        nothing — stateless operators already emitted everything.
        """
        return ()

    def watermark_out(self, w: int) -> int:
        """Given input watermark ``w``, a bound below which no future
        output LE can fall. Default: outputs never precede inputs."""
        return w

    def is_idle(self) -> bool:
        """True iff the operator holds no state a watermark could release.

        When idle, ``on_watermark`` emits nothing and ``watermark_out``
        is the identity, so the runtime may skip delivering intermediate
        watermarks entirely (it still calls ``on_flush`` at end of
        input). The default is conservative: never skip.
        """
        return False

    def apply(self, events: Sequence[Event]) -> List[Event]:
        """Run the operator over a whole LE-ordered stream (batch mode)."""
        out = self.on_batch(events)
        out.extend(self.on_flush())
        return sort_events(out)


class BinaryOperator:
    """Base class for two-input operators.

    ``apply`` merges both LE-ordered inputs into one sequence (right input
    first at ties) and feeds ``on_left`` / ``on_right``.
    """

    def on_left(self, event: Event) -> Iterable[Event]:
        raise NotImplementedError

    def on_right(self, event: Event) -> Iterable[Event]:
        raise NotImplementedError

    def on_left_batch(self, events: Sequence[Event]) -> List[Event]:
        """Process a contiguous run of left events whose delivery order
        relative to the right input has already been decided by the
        runtime. Semantically identical to per-event ``on_left``."""
        out: List[Event] = []
        for e in events:
            out.extend(self.on_left(e))
        return out

    def on_right_batch(self, events: Sequence[Event]) -> List[Event]:
        """Batch counterpart of ``on_right``; see ``on_left_batch``."""
        out: List[Event] = []
        for e in events:
            out.extend(self.on_right(e))
        return out

    def on_flush(self) -> Iterable[Event]:
        return ()

    def apply(self, left: Sequence[Event], right: Sequence[Event]) -> List[Event]:
        out: List[Event] = []
        for side, event in merge_streams(left, right):
            if side == LEFT:
                out.extend(self.on_left(event))
            else:
                out.extend(self.on_right(event))
        out.extend(self.on_flush())
        return sort_events(out)


def merge_streams(left: Sequence[Event], right: Sequence[Event]):
    """Merge two LE-ordered streams into one, right side first at ties.

    Yields ``(side, event)`` pairs. The right-first tie-break means that
    for joins/anti-joins the right synopsis is always complete up to and
    including the current instant before a left event is probed.
    """
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        if right[j].le <= left[i].le:
            yield RIGHT, right[j]
            j += 1
        else:
            yield LEFT, left[i]
            i += 1
    while j < nr:
        yield RIGHT, right[j]
        j += 1
    while i < nl:
        yield LEFT, left[i]
        i += 1
