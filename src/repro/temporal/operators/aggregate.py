"""Snapshot aggregation.

An aggregation operator (Count, Sum, Min, ...) computes and reports an
aggregate result *each time the active event set changes* — i.e. per
snapshot (Section II-A.2). Combined with AlterLifetime windowing this
yields windowed aggregates: ``sliding_window(w)`` followed by ``Count``
reports the count over the last ``w`` ticks, refreshed whenever it
changes.

The operator runs a single endpoint sweep: additions arrive in LE order,
expirations are drained from a min-heap of REs, and one output event is
emitted per maximal interval of constant aggregate value (empty snapshots
emit nothing). Aggregate state is fully incremental (`add`/`remove`), so
the same code path serves a live feed.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..batch import EventBatch
from ..event import Event
from ..time import MAX_TIME
from .base import UnaryOperator


class AggregateFunction:
    """Incremental aggregate state: payloads enter and leave the snapshot."""

    def add(self, payload: dict) -> None:
        raise NotImplementedError

    def remove(self, payload: dict) -> None:
        raise NotImplementedError

    def value(self):
        raise NotImplementedError


class CountAgg(AggregateFunction):
    """Number of payloads in the snapshot."""

    def __init__(self):
        self.n = 0

    def add(self, payload):
        self.n += 1

    def remove(self, payload):
        self.n -= 1

    def value(self):
        return self.n


class SumAgg(AggregateFunction):
    """Sum of ``column`` over the snapshot."""

    def __init__(self, column: str):
        self.column = column
        self.total = 0

    def add(self, payload):
        self.total += payload[self.column]

    def remove(self, payload):
        self.total -= payload[self.column]

    def value(self):
        return self.total


class AvgAgg(AggregateFunction):
    """Arithmetic mean of ``column`` over the snapshot (None when empty)."""

    def __init__(self, column: str):
        self.column = column
        self.total = 0.0
        self.n = 0

    def add(self, payload):
        self.total += payload[self.column]
        self.n += 1

    def remove(self, payload):
        self.total -= payload[self.column]
        self.n -= 1

    def value(self):
        return self.total / self.n if self.n else None


class _OrderStatAgg(AggregateFunction):
    """Shared machinery for Min/Max: a sorted multiset of column values."""

    def __init__(self, column: str):
        self.column = column
        self.values: List = []

    def add(self, payload):
        insort(self.values, payload[self.column])

    def remove(self, payload):
        v = payload[self.column]
        idx = bisect_left(self.values, v)
        if idx >= len(self.values) or self.values[idx] != v:
            raise RuntimeError(f"removing value {v!r} not present in snapshot")
        del self.values[idx]


class MinAgg(_OrderStatAgg):
    """Minimum of ``column`` over the snapshot (None when empty)."""

    def value(self):
        return self.values[0] if self.values else None


class MaxAgg(_OrderStatAgg):
    """Maximum of ``column`` over the snapshot (None when empty)."""

    def value(self):
        return self.values[-1] if self.values else None


class TopKAgg(_OrderStatAgg):
    """The ``k`` largest values of ``column``, descending (a tuple)."""

    def __init__(self, column: str, k: int = 3):
        super().__init__(column)
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def value(self):
        return tuple(reversed(self.values[-self.k :]))


class StdDevAgg(AggregateFunction):
    """Population standard deviation of ``column`` (None when empty)."""

    def __init__(self, column: str):
        self.column = column
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, payload):
        v = payload[self.column]
        self.n += 1
        self.total += v
        self.total_sq += v * v

    def remove(self, payload):
        v = payload[self.column]
        self.n -= 1
        self.total -= v
        self.total_sq -= v * v

    def value(self):
        if self.n == 0:
            return None
        mean = self.total / self.n
        variance = max(0.0, self.total_sq / self.n - mean * mean)
        return variance**0.5


#: Registry used by the query builder to construct aggregate state by name.
AGGREGATE_FACTORIES: Dict[str, Callable[..., AggregateFunction]] = {
    "count": CountAgg,
    "sum": SumAgg,
    "avg": AvgAgg,
    "min": MinAgg,
    "max": MaxAgg,
    "topk": TopKAgg,
    "stddev": StdDevAgg,
}


class AggSpec:
    """Declarative description of one aggregate output column.

    Args:
        kind: one of ``count``, ``sum``, ``avg``, ``min``, ``max``,
            ``topk``, ``stddev``.
        into: output column name.
        column: input column (unused by ``count``).
        params: extra constructor arguments (e.g. ``k`` for ``topk``).
    """

    __slots__ = ("kind", "into", "column", "params")

    def __init__(
        self, kind: str, into: str, column: Optional[str] = None, **params
    ):
        if kind not in AGGREGATE_FACTORIES:
            raise ValueError(f"unknown aggregate kind {kind!r}")
        if kind != "count" and column is None:
            raise ValueError(f"aggregate {kind!r} requires an input column")
        self.kind = kind
        self.into = into
        self.column = column
        self.params = params

    def build(self) -> AggregateFunction:
        if self.kind == "count":
            return CountAgg()
        return AGGREGATE_FACTORIES[self.kind](self.column, **self.params)

    def __repr__(self):
        return f"AggSpec({self.kind}, into={self.into!r}, column={self.column!r})"


class SnapshotAggregate(UnaryOperator):
    """Compute one or more aggregates per snapshot via an endpoint sweep."""

    supports_columnar = True

    def __init__(self, specs: Sequence[AggSpec]):
        if not specs:
            raise ValueError("SnapshotAggregate needs at least one AggSpec")
        self.specs = list(specs)
        self._states = [s.build() for s in self.specs]
        self._pending: List = []  # min-heap of (re, seq, payload)
        self._seq = 0
        self._active = 0
        self._segment_start: Optional[int] = None

    def _value_payload(self) -> dict:
        return {s.into: st.value() for s, st in zip(self.specs, self._states)}

    def _emit_segment(self, end: int) -> Iterable[Event]:
        """Close the current constant-value segment at ``end``."""
        if self._active > 0 and self._segment_start is not None and end > self._segment_start:
            yield Event(self._segment_start, end, self._value_payload())
        self._segment_start = end

    def _drain_until(self, t: int) -> Iterable[Event]:
        """Retire all expirations with RE <= t, emitting closed segments."""
        while self._pending and self._pending[0][0] <= t:
            re = self._pending[0][0]
            yield from self._emit_segment(re)
            while self._pending and self._pending[0][0] == re:
                _, _, payload = heapq.heappop(self._pending)
                for st in self._states:
                    st.remove(payload)
                self._active -= 1
        if self._active == 0:
            self._segment_start = None

    def on_event(self, event: Event) -> Iterable[Event]:
        yield from self._drain_until(event.le)
        if self._active > 0:
            yield from self._emit_segment(event.le)
        else:
            self._segment_start = event.le
        for st in self._states:
            st.add(event.payload)
        self._active += 1
        self._seq += 1
        heapq.heappush(self._pending, (event.re, self._seq, event.payload))

    def on_batch(self, events) -> list:
        if isinstance(events, EventBatch):
            return self._columnar_batch(events)
        # hot path: same sweep as on_event, list-building instead of
        # generator dispatch (identical emission order and state updates)
        out = []
        append = out.append
        pending = self._pending
        states = self._states
        heappop, heappush = heapq.heappop, heapq.heappush
        for event in events:
            le = event.le
            while pending and pending[0][0] <= le:
                re = pending[0][0]
                if self._active > 0 and self._segment_start is not None and re > self._segment_start:
                    append(Event(self._segment_start, re, self._value_payload()))
                self._segment_start = re
                while pending and pending[0][0] == re:
                    _, _, payload = heappop(pending)
                    for st in states:
                        st.remove(payload)
                    self._active -= 1
            if self._active > 0:
                if self._segment_start is not None and le > self._segment_start:
                    append(Event(self._segment_start, le, self._value_payload()))
                self._segment_start = le
            else:
                self._segment_start = le
            payload = event.payload
            for st in states:
                st.add(payload)
            self._active += 1
            self._seq += 1
            heappush(pending, (event.re, self._seq, payload))
        return out

    def _columnar_batch(self, batch: EventBatch) -> list:
        # the same endpoint sweep reading the packed le/re arrays; the
        # only per-row materialisation is the payload dict, which must
        # be real (it persists in the expiration heap and in aggregate
        # state between batches)
        out = []
        append = out.append
        pending = self._pending
        states = self._states
        heappop, heappush = heapq.heappop, heapq.heappush
        les, res = batch.les, batch.res
        payload_at = batch.payload_at
        for i in range(len(les)):
            le = les[i]
            while pending and pending[0][0] <= le:
                re = pending[0][0]
                if self._active > 0 and self._segment_start is not None and re > self._segment_start:
                    append(Event(self._segment_start, re, self._value_payload()))
                self._segment_start = re
                while pending and pending[0][0] == re:
                    _, _, payload = heappop(pending)
                    for st in states:
                        st.remove(payload)
                    self._active -= 1
            if self._active > 0:
                if self._segment_start is not None and le > self._segment_start:
                    append(Event(self._segment_start, le, self._value_payload()))
                self._segment_start = le
            else:
                self._segment_start = le
            payload = payload_at(i)
            for st in states:
                st.add(payload)
            self._active += 1
            self._seq += 1
            heappush(pending, (res[i], self._seq, payload))
        return out

    def on_flush(self) -> Iterable[Event]:
        yield from self._drain_until(MAX_TIME)

    def on_watermark(self, w: int) -> Iterable[Event]:
        # all changepoints < w are final: retiring expirations with RE <= w
        # is exactly what the arrival of an event at LE = w would trigger
        yield from self._drain_until(w)

    def watermark_out(self, w: int) -> int:
        # the open segment (if any) will be emitted later with its
        # original start, so the output watermark lags to that start
        if self._active > 0 and self._segment_start is not None:
            return min(w, self._segment_start)
        return w

    def is_idle(self) -> bool:
        return not self._pending
