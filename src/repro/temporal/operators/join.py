"""TemporalJoin and AntiSemiJoin (Section II-A.2).

TemporalJoin outputs the relational join of its inputs restricted to
pairs with overlapping lifetimes; the output lifetime is the lifetimes'
intersection. It is implemented as a symmetric hash join on the equi-join
key: each side keeps a per-key synopsis of active events, pruned lazily
as application time advances (any stored event whose RE is <= the current
LE can never match again, because future events only arrive with larger
LEs).

AntiSemiJoin eliminates point events from the left input that intersect
some matching event in the right synopsis — the paper's tool for "remove
impressions that were clicked" and "remove activity of bot users". The
right-before-left tie-break of the operator framework guarantees the
right synopsis is complete up to the probe instant.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..event import Event
from .base import BinaryOperator

#: Optional extra predicate over (left payload, right payload).
Residual = Callable[[dict, dict], bool]
#: Payload combiner for join output; default merges left into right.
Selector = Callable[[dict, dict], dict]


def _default_select(left: dict, right: dict) -> dict:
    return {**left, **right}


class _Synopsis:
    """Per-key lists of stored events with lazy expiration."""

    __slots__ = ("by_key",)

    def __init__(self):
        self.by_key: Dict[Tuple, List[Event]] = {}

    def insert(self, key: Tuple, event: Event) -> None:
        self.by_key.setdefault(key, []).append(event)

    def probe(self, key: Tuple, now: int) -> List[Event]:
        """Live events for ``key``, pruning ones that expired before ``now``."""
        stored = self.by_key.get(key)
        if stored is None:
            return []
        for e in stored:
            if e.re <= now:
                break
        else:
            return stored  # nothing expired: no copy needed
        live = [e for e in stored if e.re > now]
        if live:
            self.by_key[key] = live
        else:
            del self.by_key[key]
        return live

    def size(self) -> int:
        return sum(len(v) for v in self.by_key.values())


def _key_fn(columns: Sequence[str]):
    cols = tuple(columns)
    if len(cols) == 1:
        (c0,) = cols

        def key1(payload: dict) -> Tuple:
            return (payload[c0],)

        return key1
    if len(cols) == 2:
        c0, c1 = cols

        def key2(payload: dict) -> Tuple:
            return (payload[c0], payload[c1])

        return key2

    def key(payload: dict) -> Tuple:
        return tuple(payload[c] for c in cols)

    return key


class TemporalJoin(BinaryOperator):
    """Symmetric hash equi-join with lifetime intersection.

    Args:
        on: join key column names (present in both inputs).
        residual: optional extra predicate over both payloads.
        select: payload combiner; defaults to ``{**left, **right}``.
    """

    def __init__(
        self,
        on: Sequence[str],
        residual: Optional[Residual] = None,
        select: Optional[Selector] = None,
    ):
        if not on:
            raise ValueError("TemporalJoin requires at least one key column")
        self.on = tuple(on)
        self.residual = residual
        self.select = select or _default_select
        self._key = _key_fn(on)
        self._left = _Synopsis()
        self._right = _Synopsis()

    def _probe_and_insert(
        self, event: Event, own: _Synopsis, other: _Synopsis, event_is_left: bool
    ) -> Iterable[Event]:
        key = self._key(event.payload)
        for match in other.probe(key, event.le):
            if event_is_left:
                lp, rp = event.payload, match.payload
            else:
                lp, rp = match.payload, event.payload
            if self.residual is not None and not self.residual(lp, rp):
                continue
            le = max(event.le, match.le)
            re = min(event.re, match.re)
            if re > le:
                yield Event(le, re, self.select(lp, rp))
        own.insert(key, event)

    def on_left(self, event: Event) -> Iterable[Event]:
        return self._probe_and_insert(event, self._left, self._right, True)

    def on_right(self, event: Event) -> Iterable[Event]:
        return self._probe_and_insert(event, self._right, self._left, False)

    def _probe_batch(
        self,
        events: Sequence[Event],
        own: _Synopsis,
        other: _Synopsis,
        events_are_left: bool,
    ) -> List[Event]:
        """Batch probe: per-event semantics with the loop invariants
        (key fn, synopsis methods, residual/select) hoisted out. The
        per-key no-expiry fast path lives in ``_Synopsis.probe``."""
        key_fn = self._key
        residual = self.residual
        select = self.select
        probe = other.probe
        insert = own.insert
        out: List[Event] = []
        append = out.append
        for event in events:
            payload = event.payload
            key = key_fn(payload)
            now = event.le
            matches = probe(key, now)
            if matches:
                event_re = event.re
                for match in matches:
                    if events_are_left:
                        lp, rp = payload, match.payload
                    else:
                        lp, rp = match.payload, payload
                    if residual is not None and not residual(lp, rp):
                        continue
                    le = now if now >= match.le else match.le
                    re = event_re if event_re <= match.re else match.re
                    if re > le:
                        append(Event(le, re, select(lp, rp)))
            insert(key, event)
        return out

    def on_left_batch(self, events: Sequence[Event]) -> List[Event]:
        return self._probe_batch(events, self._left, self._right, True)

    def on_right_batch(self, events: Sequence[Event]) -> List[Event]:
        return self._probe_batch(events, self._right, self._left, False)


class AntiSemiJoin(BinaryOperator):
    """Emit left *point* events not covered by any matching right event."""

    def __init__(self, on: Sequence[str], residual: Optional[Residual] = None):
        if not on:
            raise ValueError("AntiSemiJoin requires at least one key column")
        self.on = tuple(on)
        self.residual = residual
        self._key = _key_fn(on)
        self._right = _Synopsis()

    def on_left(self, event: Event) -> Iterable[Event]:
        if not event.is_point:
            raise ValueError(
                "AntiSemiJoin supports point events on its left input only "
                f"(got lifetime [{event.le}, {event.re}))"
            )
        payload = event.payload
        le = event.le
        residual = self.residual
        for match in self._right.probe(self._key(payload), le):
            if match.le <= le:  # match covers the probe instant
                if residual is None or residual(payload, match.payload):
                    return ()
        return (event,)

    def on_left_batch(self, events: Sequence[Event]) -> List[Event]:
        key_fn = self._key
        probe = self._right.probe
        residual = self.residual
        out: List[Event] = []
        append = out.append
        for event in events:
            if not event.is_point:
                raise ValueError(
                    "AntiSemiJoin supports point events on its left input only "
                    f"(got lifetime [{event.le}, {event.re}))"
                )
            payload = event.payload
            le = event.le
            for match in probe(key_fn(payload), le):
                if match.le <= le and (
                    residual is None or residual(payload, match.payload)
                ):
                    break  # covered: the probe event is eliminated
            else:
                append(event)
        return out

    def on_right(self, event: Event) -> Iterable[Event]:
        self._right.insert(self._key(event.payload), event)
        return ()

    def on_right_batch(self, events: Sequence[Event]) -> List[Event]:
        key_fn = self._key
        insert = self._right.insert
        for event in events:
            insert(key_fn(event.payload), event)
        return []
