"""Temporal operators (Section II-A.2 of the paper)."""

from .aggregate import (
    AGGREGATE_FACTORIES,
    AggSpec,
    AggregateFunction,
    AvgAgg,
    CountAgg,
    MaxAgg,
    MinAgg,
    SnapshotAggregate,
    StdDevAgg,
    SumAgg,
    TopKAgg,
)
from .base import BinaryOperator, UnaryOperator, merge_streams, sort_events
from .join import AntiSemiJoin, TemporalJoin
from .stateless import (
    AlterLifetime,
    CountWindow,
    Project,
    SessionWindow,
    Where,
    count_window,
    extend_to_infinity,
    session_window,
    hopping_window,
    shift_lifetime,
    sliding_window,
    to_point_events,
)
from .scan import ScanUDO
from .udo import SnapshotUDO, WindowedUDO
from .union import Union

__all__ = [
    "AGGREGATE_FACTORIES",
    "AggSpec",
    "AggregateFunction",
    "AlterLifetime",
    "AntiSemiJoin",
    "AvgAgg",
    "BinaryOperator",
    "CountAgg",
    "CountWindow",
    "MaxAgg",
    "MinAgg",
    "Project",
    "ScanUDO",
    "SessionWindow",
    "SnapshotAggregate",
    "SnapshotUDO",
    "StdDevAgg",
    "SumAgg",
    "TopKAgg",
    "TemporalJoin",
    "UnaryOperator",
    "Union",
    "Where",
    "WindowedUDO",
    "count_window",
    "extend_to_infinity",
    "hopping_window",
    "merge_streams",
    "session_window",
    "shift_lifetime",
    "sliding_window",
    "sort_events",
    "to_point_events",
]
