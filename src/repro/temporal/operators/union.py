"""Union: merge two streams into one (Section II-A.2).

Multicast — the dual operator that feeds one stream to several downstream
consumers — needs no operator class here: the engine's plan graph is a
DAG, so a node with several parents is evaluated once and its output list
is shared (see ``engine.py``).
"""

from __future__ import annotations

from typing import Iterable

from ..event import Event
from .base import BinaryOperator


class Union(BinaryOperator):
    """Bag union of both inputs, preserving LE order."""

    def on_left(self, event: Event) -> Iterable[Event]:
        yield event

    def on_right(self, event: Event) -> Iterable[Event]:
        yield event
