"""GroupApply: apply a query sub-plan to each key group independently.

GroupApply (Section II-A.2) is the scale-out anchor of the algebra: a CQ
plan whose root group key is X can be partitioned by any subset of X,
which is what TiMR exploits to map fragments onto M-R partitions.

The operator buffers events per group and, at flush, runs the compiled
sub-plan over each group's LE-ordered sub-stream, re-attaching the group
key columns to every output payload. (Within a TiMR reducer the groups of
one partition are processed sequentially, which matches the paper's
hash-bucketed reducer of Section III-C.3.)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from ..event import Event
from .base import UnaryOperator, sort_events

#: A compiled sub-plan: LE-ordered events in, events out.
SubPlanRunner = Callable[[List[Event]], List[Event]]


class GroupApply(UnaryOperator):
    """Partition the stream by ``keys`` and run ``subplan`` per group.

    Args:
        keys: grouping column names; every input payload must carry them.
        subplan: a callable mapping one group's event list to output
            events (the engine passes a freshly compiled sub-plan runner).
    """

    def __init__(self, keys: Sequence[str], subplan: SubPlanRunner):
        if not keys:
            raise ValueError("GroupApply requires at least one key column")
        self.keys = tuple(keys)
        self.subplan = subplan
        self._groups: Dict[Tuple, List[Event]] = {}

    def _key_of(self, payload: dict) -> Tuple:
        try:
            return tuple(payload[k] for k in self.keys)
        except KeyError as exc:
            raise KeyError(
                f"GroupApply key column {exc} missing from payload {payload!r}"
            ) from None

    def on_event(self, event: Event) -> Iterable[Event]:
        self._groups.setdefault(self._key_of(event.payload), []).append(event)
        return ()

    def on_flush(self) -> Iterable[Event]:
        out: List[Event] = []
        # Deterministic group order keeps reducer restarts byte-identical.
        for key in sorted(self._groups, key=repr):
            key_cols = dict(zip(self.keys, key))
            for e in self.subplan(self._groups[key]):
                payload = dict(e.payload)
                payload.update(key_cols)
                out.append(e.with_payload(payload))
        self._groups.clear()
        return sort_events(out)
