"""Select (Where), Project, AlterLifetime, and window operators.

AlterLifetime (Section II-A.2) is the windowing workhorse: it rewrites
event lifetimes, which controls the time range over which an event
contributes to downstream snapshot computations. Sliding windows, hopping
windows, and lifetime shifts are all AlterLifetime specializations.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable

from ..batch import EventBatch
from ..event import Event
from ..time import MAX_TIME, TICK
from .base import UnaryOperator

PayloadPredicate = Callable[[dict], bool]
PayloadTransform = Callable[[dict], dict]


class Where(UnaryOperator):
    """Keep events whose payload satisfies ``predicate``.

    ``spec`` optionally declares the predicate's shape —
    ``("eq", key, value)``, ``("ge", key, value)``, or
    ``("gt", key, value)`` — letting the columnar kernel sweep the named
    column directly with zero per-row Python calls. The spec must
    describe ``predicate`` exactly (same contract as AlterLifetime's
    spec).
    """

    supports_columnar = True

    def __init__(self, predicate: PayloadPredicate, spec: tuple = None):
        self.predicate = predicate
        self.spec = spec

    def on_event(self, event: Event) -> Iterable[Event]:
        if self.predicate(event.payload):
            yield event

    def on_batch(self, events) -> list:
        # hot path: a comprehension beats per-event generator dispatch
        # (input order is preserved)
        pred = self.predicate
        if isinstance(events, EventBatch):
            spec = self.spec
            # spec kernel only when the key is in every layout: a row
            # missing the key must raise KeyError exactly like the
            # row-mode predicate would
            if spec is not None and all(
                spec[1] in keys for keys in events.layouts
            ):
                column = events.columns.get(spec[1])
                if column is not None:
                    value = spec[2]
                    if spec[0] == "eq":
                        keep = [i for i, v in enumerate(column) if v == value]
                    elif spec[0] == "ge":
                        keep = [i for i, v in enumerate(column) if v >= value]
                    else:  # "gt"
                        keep = [i for i, v in enumerate(column) if v > value]
                    if len(keep) == len(events):
                        return events
                    return events.gather(keep)
            # columnar fallback: predicate sweep over a reused row view
            # produces a selection index, then one gather
            view = events.row_view()
            keep = []
            append = keep.append
            for i in range(len(events)):
                view.index = i
                if pred(view):
                    append(i)
            if len(keep) == len(events):
                return events  # all rows pass: batches are immutable, share
            return events.gather(keep)
        return [e for e in events if pred(e.payload)]

    def is_idle(self) -> bool:
        return True


class Project(UnaryOperator):
    """Rewrite each payload with ``fn`` (schema change, derived columns)."""

    supports_columnar = True

    def __init__(self, fn: PayloadTransform):
        self.fn = fn

    def on_event(self, event: Event) -> Iterable[Event]:
        yield event.with_payload(self.fn(event.payload))

    def on_batch(self, events) -> list:
        fn = self.fn
        if isinstance(events, EventBatch):
            # columnar kernel: rebuild payload columns from fn's output
            # mappings; lifetimes are untouched so the arrays are shared.
            # fn gets a private dict per row (not the shared view):
            # projections overwhelmingly splat the whole payload
            # ({**p, ...}), which runs at C speed on a real dict
            return EventBatch.from_payloads(
                events.les,
                events.res,
                [fn(p) for p in events.payload_dicts()],
            )
        return [e.with_payload(fn(e.payload)) for e in events]

    def is_idle(self) -> bool:
        return True


class AlterLifetime(UnaryOperator):
    """Generic lifetime rewrite: ``(le, re) -> (le_fn(le, re), re_fn(le, re))``.

    Note: a rewrite may *reorder* events by their new LE (e.g. hopping
    quantization); batch ``apply`` re-sorts, so downstream operators still
    see LE order.
    """

    supports_columnar = True

    def __init__(
        self,
        le_fn: Callable[[int, int], int],
        re_fn: Callable[[int, int], int],
        spec: tuple = None,
    ):
        self.le_fn = le_fn
        self.re_fn = re_fn
        # recognized shapes get pure-arithmetic columnar kernels with no
        # per-row lambda dispatch: ("window", w) | ("hop", w, h) |
        # ("shift", dle, dre) | ("point",) | ("infinity",); None falls
        # back to calling le_fn/re_fn per row
        self.spec = spec

    def on_event(self, event: Event) -> Iterable[Event]:
        new_le = self.le_fn(event.le, event.re)
        new_re = self.re_fn(event.le, event.re)
        if new_re > new_le:  # empty lifetimes vanish from the relation
            yield Event(new_le, new_re, event.payload)

    def on_batch(self, events) -> list:
        if isinstance(events, EventBatch):
            return self._columnar(events)
        le_fn, re_fn = self.le_fn, self.re_fn
        out = []
        append = out.append
        for e in events:
            le, re = e.le, e.re
            new_le = le_fn(le, re)
            new_re = re_fn(le, re)
            if new_re > new_le:
                append(Event(new_le, new_re, e.payload))
        return out

    def _columnar(self, batch: EventBatch) -> EventBatch:
        """Lifetime arithmetic over the packed le/re arrays."""
        les, res = batch.les, batch.res
        spec = self.spec
        if spec is not None:
            kind = spec[0]
            if kind == "window":
                w = spec[1]
                return batch.with_lifetimes(les, array("q", [le + w for le in les]))
            if kind == "hop":
                w, h = spec[1], spec[2]
                new_les = array("q", [-(-le // h) * h for le in les])
                return batch.with_lifetimes(
                    new_les, array("q", [le + w for le in new_les])
                )
            if kind == "point":
                return batch.with_lifetimes(
                    les, array("q", [le + TICK for le in les])
                )
            if kind == "infinity":
                if not les or max(les) < MAX_TIME:
                    return batch.with_lifetimes(
                        les, array("q", [MAX_TIME]) * len(les)
                    )
                keep = [i for i in range(len(les)) if les[i] < MAX_TIME]
                gathered = batch.gather(keep)
                return gathered.with_lifetimes(
                    gathered.les, array("q", [MAX_TIME]) * len(keep)
                )
            if kind == "shift":
                dle, dre = spec[1], spec[2]
                new_les = array("q", [le + dle for le in les]) if dle else les
                new_res = array("q", [re + dre for re in res]) if dre else res
                if dle == dre:
                    # a pure shift preserves extents: nothing can empty
                    return batch.with_lifetimes(new_les, new_res)
                keep = [
                    i for i in range(len(new_les)) if new_res[i] > new_les[i]
                ]
                if len(keep) == len(new_les):
                    return batch.with_lifetimes(new_les, new_res)
                return batch.gather(keep).with_lifetimes(
                    array("q", [new_les[i] for i in keep]),
                    array("q", [new_res[i] for i in keep]),
                )
        # custom rewrite: per-row le_fn/re_fn calls, but still no Event
        # allocation and no payload traffic
        le_fn, re_fn = self.le_fn, self.re_fn
        new_les = array("q")
        new_res = array("q")
        keep = []
        append = keep.append
        for i in range(len(les)):
            le, re = les[i], res[i]
            new_le = le_fn(le, re)
            new_re = re_fn(le, re)
            if new_re > new_le:
                append(i)
                new_les.append(new_le)
                new_res.append(new_re)
        if len(keep) == len(les):
            return batch.with_lifetimes(new_les, new_res)
        return batch.gather(keep).with_lifetimes(new_les, new_res)

    def is_idle(self) -> bool:
        return True


def sliding_window(w: int) -> AlterLifetime:
    """Sliding window of width ``w``: set ``re = le + w``.

    At any time *t* the active set then contains all events with timestamp
    in ``(t - w, t]`` (paper Section II-A.2).
    """
    if w <= 0:
        raise ValueError("window width must be positive")
    return AlterLifetime(
        lambda le, re: le, lambda le, re: le + w, spec=("window", w)
    )


def hopping_window(w: int, h: int) -> AlterLifetime:
    """Hopping window of width ``w`` advancing every ``h`` ticks.

    An event with timestamp *t* becomes visible to every hop boundary
    *b* (a multiple of ``h``) such that its window ``(b - w, b]`` contains
    *t* — i.e. lifetime ``[ceil(t / h) * h, ceil(t / h) * h + w)``.
    Downstream snapshots therefore only change at hop boundaries.
    """
    if w <= 0 or h <= 0:
        raise ValueError("window width and hop size must be positive")
    if w % h != 0:
        raise ValueError("window width must be a multiple of the hop size")

    def quantize_up(t: int) -> int:
        return -(-t // h) * h

    return AlterLifetime(
        lambda le, re: quantize_up(le),
        lambda le, re: quantize_up(le) + w,
        spec=("hop", w, h),
    )


def shift_lifetime(delta_le: int, delta_re: int = None) -> AlterLifetime:
    """Shift LE by ``delta_le`` and RE by ``delta_re`` (defaults to LE's shift).

    ``shift_lifetime(-d, 0)`` reproduces Figure 12's ``LE = OldLE - 5min``:
    a click at *c* then covers ``[c - d, c + 1)``, so an AntiSemiJoin drops
    impressions followed by a click within *d*.
    """
    if delta_re is None:
        delta_re = delta_le
    return AlterLifetime(
        lambda le, re: le + delta_le,
        lambda le, re: re + delta_re,
        spec=("shift", delta_le, delta_re),
    )


def to_point_events() -> AlterLifetime:
    """Collapse each event to a point event at its LE."""
    return AlterLifetime(
        lambda le, re: le, lambda le, re: le + TICK, spec=("point",)
    )


def extend_to_infinity() -> AlterLifetime:
    """Extend each event's lifetime to the end of time (RE = MAX_TIME)."""
    return AlterLifetime(
        lambda le, re: le, lambda le, re: MAX_TIME, spec=("infinity",)
    )


class CountWindow(UnaryOperator):
    """Keep each event alive until ``n`` further events have arrived.

    The count-based window of CEP engines (the "Count Window w=3" box of
    the paper's Figure 3): at any instant the active set is the last
    ``n`` events by arrival timestamp. Implemented by rewriting event
    ``i``'s RE to event ``i+n``'s LE (events sharing that LE expire
    together; an event is never alive past the point where ``n`` newer
    events exist). Unlike time windows this operator is stateful — it
    buffers ``n`` events — but it remains streaming-friendly: an event
    is released as soon as its successor ``n`` steps later arrives.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("count window size must be positive")
        self.n = n
        self._buffer = []  # the last <= n events, pending their RE

    def on_event(self, event: Event) -> Iterable[Event]:
        self._buffer.append(event)
        if len(self._buffer) > self.n:
            expired = self._buffer.pop(0)
            if event.le > expired.le:
                yield Event(expired.le, event.le, expired.payload)
            # events with identical timestamps expire instantly: they
            # never own a snapshot, so they vanish from the relation

    def on_flush(self) -> Iterable[Event]:
        # the trailing n events never expire: alive to the end of time
        for event in self._buffer:
            yield Event(event.le, MAX_TIME, event.payload)
        self._buffer = []

    def on_watermark(self, w: int) -> Iterable[Event]:
        return ()

    def watermark_out(self, w: int) -> int:
        if self._buffer:
            return min(w, self._buffer[0].le)
        return w

    def is_idle(self) -> bool:
        return not self._buffer


def count_window(n: int) -> CountWindow:
    """Events stay active until ``n`` newer events arrive (Figure 3)."""
    return CountWindow(n)


class SessionWindow(UnaryOperator):
    """Group activity into sessions separated by gaps of at least ``gap``.

    Every event's lifetime becomes its whole session: ``[le,
    last_event_of_session.le + gap)``. A downstream per-snapshot count
    then reports "events in the current session so far", and a
    TemporalJoin against a session stream implements "same-session"
    correlation — the natural unit of web-analytics behavior in the
    paper's domain. Sessions close ``gap`` ticks after their last event,
    so results are emitted with at most that delay.
    """

    def __init__(self, gap: int):
        if gap <= 0:
            raise ValueError("session gap must be positive")
        self.gap = gap
        self._session = []  # events of the currently open session

    def _close(self) -> Iterable[Event]:
        if not self._session:
            return
        session_end = self._session[-1].le + self.gap
        for event in self._session:
            yield Event(event.le, session_end, event.payload)
        self._session = []

    def on_event(self, event: Event) -> Iterable[Event]:
        if self._session and event.le - self._session[-1].le >= self.gap:
            yield from self._close()
        self._session.append(event)

    def on_flush(self) -> Iterable[Event]:
        yield from self._close()

    def on_watermark(self, w: int) -> Iterable[Event]:
        if self._session and w - self._session[-1].le >= self.gap:
            yield from self._close()

    def watermark_out(self, w: int) -> int:
        if self._session:
            return min(w, self._session[0].le)
        return w

    def is_idle(self) -> bool:
        return not self._session


def session_window(gap: int) -> SessionWindow:
    """Events stay active for their whole gap-delimited session."""
    return SessionWindow(gap)
