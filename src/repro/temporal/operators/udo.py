"""Windowed user-defined operators (UDOs).

DSMSs support incremental user-defined operators where the user provides
code to run over the (windowed) input stream (Section II-A.2). The paper
uses a hopping-window UDO twice: the z-score computation of feature
selection and the periodic logistic-regression model rebuild (hop size =
how often to relearn, window size = how much history to learn from).

``WindowedUDO`` invokes the user function at every hop boundary *b* with
the payloads whose timestamps fall in the window ``(b - w, b]``; each
returned payload becomes an output event with lifetime ``[b, b + h)`` —
i.e. the result (e.g. model weights) is "current" until the next rebuild,
ready to be lodged in a TemporalJoin synopsis for scoring.

``SnapshotUDO`` is the non-windowed variant: the user function runs once
per snapshot over the active payload bag (used for per-snapshot math such
as the two-proportion z-test).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from typing import Callable, Iterable, List, Optional

from ..event import Event
from ..time import MAX_TIME
from .base import UnaryOperator

#: User function for hopping UDOs: (window payloads, boundary time) -> payloads.
HoppingFn = Callable[[List[dict], int], Iterable[dict]]
#: User function for snapshot UDOs: active payload bag -> payloads.
SnapshotFn = Callable[[List[dict]], Iterable[dict]]


class WindowedUDO(UnaryOperator):
    """Run ``fn`` over a hopping window of the input's point timestamps.

    Args:
        w: window width (ticks of history visible at each boundary).
        h: hop size (boundary spacing; also the output lifetime).
        fn: ``fn(payloads, boundary) -> iterable of payload dicts``.
        skip_empty: when True (default) boundaries whose window is empty
            do not invoke ``fn``.
    """

    def __init__(self, w: int, h: int, fn: HoppingFn, skip_empty: bool = True):
        if w <= 0 or h <= 0:
            raise ValueError("window width and hop size must be positive")
        self.w = w
        self.h = h
        self.fn = fn
        self.skip_empty = skip_empty
        self._les: List[int] = []
        self._payloads: List[dict] = []
        self._start = 0  # index of first un-evicted buffered event
        self._next_boundary: Optional[int] = None
        self._max_le: Optional[int] = None

    def _quantize_up(self, t: int) -> int:
        return -(-t // self.h) * self.h

    def _fire(self, boundary: int) -> Iterable[Event]:
        """Evaluate the window ``(boundary - w, boundary]`` and emit results."""
        low = boundary - self.w
        # evict events that have left every future window
        while self._start < len(self._les) and self._les[self._start] <= low:
            self._start += 1
        if self._start > 4096 and self._start * 2 > len(self._les):
            del self._les[: self._start]
            del self._payloads[: self._start]
            self._start = 0
        hi = bisect_right(self._les, boundary, lo=self._start)
        window = self._payloads[self._start : hi]
        if window or not self.skip_empty:
            for payload in self.fn(window, boundary):
                yield Event(boundary, boundary + self.h, dict(payload))

    def _advance_to(self, t: int) -> Iterable[Event]:
        """Fire every boundary strictly before ``t`` (its window is final)."""
        if self._next_boundary is None:
            return
        while self._next_boundary < t:
            # fast-forward across stretches with no buffered events
            if self.skip_empty and self._start >= len(self._les):
                nxt = self._quantize_up(t)
                self._next_boundary = max(self._next_boundary, nxt)
                if self._next_boundary >= t:
                    break
            yield from self._fire(self._next_boundary)
            self._next_boundary += self.h

    def on_event(self, event: Event) -> Iterable[Event]:
        yield from self._advance_to(event.le)
        if self._next_boundary is None:
            self._next_boundary = self._quantize_up(event.le)
        self._les.append(event.le)
        self._payloads.append(event.payload)
        self._max_le = event.le

    def on_flush(self) -> Iterable[Event]:
        if self._max_le is None:
            return
        # Fire every boundary whose window (b - w, b] can still see data:
        # the last one is the largest multiple of h below max_le + w. This
        # matches hopping_window + aggregate semantics exactly.
        last = ((self._max_le + self.w - 1) // self.h) * self.h
        yield from self._advance_to(last + 1)

    def on_watermark(self, w: int) -> Iterable[Event]:
        # a boundary b < w only sees events with LE <= b < w: all arrived
        yield from self._advance_to(w)

    def is_idle(self) -> bool:
        # with no buffered events, skip_empty fast-forwards boundaries
        # without firing; emission can only resume on a new event
        return self.skip_empty and self._start >= len(self._les)


class SnapshotUDO(UnaryOperator):
    """Run ``fn`` over the active payload bag at every snapshot.

    Output events carry ``fn``'s payloads over each maximal interval
    between changepoints with a non-empty active set. This is the shape
    used by CalcScore (Figure 13): the joined count stream changes at hop
    boundaries and the UDO recomputes z-scores per snapshot.
    """

    def __init__(self, fn: SnapshotFn):
        self.fn = fn
        self._pending: List = []  # (re, seq, payload)
        self._active: List[dict] = []
        self._seq = 0
        self._segment_start: Optional[int] = None

    def _emit_segment(self, end: int) -> Iterable[Event]:
        if self._active and self._segment_start is not None and end > self._segment_start:
            for payload in self.fn(list(self._active)):
                yield Event(self._segment_start, end, dict(payload))
        self._segment_start = end

    def _drain_until(self, t: int) -> Iterable[Event]:
        while self._pending and self._pending[0][0] <= t:
            re = self._pending[0][0]
            yield from self._emit_segment(re)
            while self._pending and self._pending[0][0] == re:
                _, _, payload = heapq.heappop(self._pending)
                self._active.remove(payload)
        if not self._active:
            self._segment_start = None

    def on_event(self, event: Event) -> Iterable[Event]:
        yield from self._drain_until(event.le)
        if self._active:
            yield from self._emit_segment(event.le)
        else:
            self._segment_start = event.le
        self._active.append(event.payload)
        self._seq += 1
        heapq.heappush(self._pending, (event.re, self._seq, event.payload))

    def on_flush(self) -> Iterable[Event]:
        yield from self._drain_until(MAX_TIME)

    def on_watermark(self, w: int) -> Iterable[Event]:
        yield from self._drain_until(w)

    def watermark_out(self, w: int) -> int:
        if self._active and self._segment_start is not None:
            return min(w, self._segment_start)
        return w

    def is_idle(self) -> bool:
        return not self._pending
