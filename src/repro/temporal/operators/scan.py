"""ScanUDO: a stateful per-event user-defined operator.

DSMS UDOs may be *incremental* (Section II-A.2: "the user provides code
to perform computations over the (windowed) input stream"). While
:class:`WindowedUDO` recomputes over a hopping window, ``ScanUDO`` folds
state over the stream one event at a time — the natural host for online
algorithms such as incremental logistic regression (Section IV-B.4: "We
can plug-in an incremental LR algorithm").

The user supplies a ``state_factory`` (fresh state per operator
instance, so reducer restarts stay deterministic) and a function
``fn(state, payload, le) -> iterable of payloads``; each returned
payload becomes a point event at the input event's LE.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..event import Event
from .base import UnaryOperator

ScanFn = Callable[[Any, dict, int], Iterable[dict]]


class ScanUDO(UnaryOperator):
    """Fold ``fn`` over the stream with per-run state."""

    def __init__(self, state_factory: Callable[[], Any], fn: ScanFn):
        self.state = state_factory()
        self.fn = fn

    def on_event(self, event: Event) -> Iterable[Event]:
        for payload in self.fn(self.state, event.payload, event.le):
            yield Event.point(event.le, dict(payload))

    def is_idle(self) -> bool:
        # folded state only ever emits on events, never on watermarks
        return True
