"""Reference temporal-relation semantics.

A stream can be viewed as a *changing temporal relation* (Section II-A.1):
at every instant ``t`` the relation contains the payloads of all events
whose lifetimes contain ``t`` (a bag — duplicates count). Operator
semantics are defined on this view and are independent of physical
processing order.

This module provides:

* :func:`normalize` — a canonical form for a bag of events, so two event
  sets can be compared *as temporal relations* (ignoring how intervals
  happen to be split or coalesced);
* :func:`snapshot` / :func:`changepoints` — brute-force inspection of the
  relation at any instant;
* a tiny brute-force evaluator used by property-based tests as the ground
  truth against which the streaming operators are verified.

Everything here favours obviousness over speed; the streaming engine in
``engine.py`` is the fast path.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .event import Event


def _freeze(payload) -> Tuple[Tuple[str, Any], ...]:
    """A hashable canonical key for a payload dict."""
    return tuple(sorted(payload.items(), key=lambda kv: kv[0]))


def _thaw(frozen: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return dict(frozen)


def changepoints(events: Iterable[Event]) -> List[int]:
    """All instants at which the temporal relation can change, sorted."""
    points = set()
    for e in events:
        points.add(e.le)
        points.add(e.re)
    return sorted(points)


def snapshot(events: Iterable[Event], t: int) -> Counter:
    """The bag of payloads active at instant ``t`` (keys are frozen payloads)."""
    bag: Counter = Counter()
    for e in events:
        if e.active_at(t):
            bag[_freeze(e.payload)] += 1
    return bag


def normalize(events: Iterable[Event]) -> List[Event]:
    """Canonicalize a bag of events as a temporal relation.

    For each distinct payload we sweep its lifetime endpoints and emit one
    event per maximal interval of constant multiplicity (multiplicity *k*
    yields *k* stacked copies). The result is sorted deterministically, so
    two event lists are snapshot-equivalent iff their normalizations are
    equal — the equality the temporal algebra guarantees across reruns.
    """
    deltas: Dict[Tuple, List[Tuple[int, int]]] = defaultdict(list)
    for e in events:
        key = _freeze(e.payload)
        deltas[key].append((e.le, +1))
        deltas[key].append((e.re, -1))

    out: List[Event] = []
    for key, points in deltas.items():
        points.sort()
        payload = _thaw(key)
        # fold deltas at equal instants into a (t, multiplicity-after) timeline,
        # skipping instants where the multiplicity does not actually change
        timeline: List[Tuple[int, int]] = []
        multiplicity = 0
        i = 0
        n = len(points)
        while i < n:
            t = points[i][0]
            while i < n and points[i][0] == t:
                multiplicity += points[i][1]
                i += 1
            if not timeline or timeline[-1][1] != multiplicity:
                timeline.append((t, multiplicity))
        # emit maximal intervals of constant non-zero multiplicity
        for (start, mult), (end, _next) in zip(timeline, timeline[1:]):
            for _ in range(mult):
                out.append(Event(start, end, payload))
    out.sort(key=Event.sort_key)
    return out


def equivalent(a: Iterable[Event], b: Iterable[Event]) -> bool:
    """True when two event bags denote the same temporal relation."""
    return normalize(a) == normalize(b)


# ---------------------------------------------------------------------------
# Brute-force reference operators (ground truth for property tests)
# ---------------------------------------------------------------------------


def ref_where(events: Sequence[Event], predicate) -> List[Event]:
    """Reference Select: keep events whose payload satisfies ``predicate``."""
    return [e for e in events if predicate(e.payload)]


def ref_project(events: Sequence[Event], fn) -> List[Event]:
    """Reference Project: rewrite each payload with ``fn``."""
    return [e.with_payload(fn(e.payload)) for e in events]


def ref_window(events: Sequence[Event], w: int) -> List[Event]:
    """Reference sliding window: set ``re = le + w`` (AlterLifetime)."""
    return [e.with_lifetime(e.le, e.le + w) for e in events]


def ref_aggregate(events: Sequence[Event], fn, into: str) -> List[Event]:
    """Reference snapshot aggregate.

    At each maximal interval between changepoints with a non-empty active
    bag, emit one event whose payload is ``{into: fn(active payload list)}``.
    ``fn`` receives the concrete payload dicts active in the snapshot.
    """
    events = list(events)
    points = changepoints(events)
    out: List[Event] = []
    for start, end in zip(points, points[1:]):
        active = [e.payload for e in events if e.le <= start and e.re >= end]
        if active:
            out.append(Event(start, end, {into: fn(active)}))
    return normalize(out)


def ref_temporal_join(
    left: Sequence[Event], right: Sequence[Event], condition
) -> List[Event]:
    """Reference TemporalJoin: relational join on overlapping lifetimes.

    Output payload merges left then right payloads (right wins on column
    collisions); output lifetime is the lifetimes' intersection.
    """
    out = []
    for l in left:
        for r in right:
            if l.overlaps(r) and condition(l.payload, r.payload):
                merged = {**l.payload, **r.payload}
                out.append(Event(max(l.le, r.le), min(l.re, r.re), merged))
    return out


def ref_anti_semi_join(
    left: Sequence[Event], right: Sequence[Event], condition
) -> List[Event]:
    """Reference AntiSemiJoin for point events on the left input.

    Emits left point events whose instant is not covered by any matching
    right event (Section II-A.2: "eliminate point events from the left
    input that do intersect some matching event in the right synopsis").
    """
    out = []
    for l in left:
        if not l.is_point:
            raise ValueError("reference AntiSemiJoin requires point events on the left")
        covered = any(
            r.active_at(l.le) and condition(l.payload, r.payload) for r in right
        )
        if not covered:
            out.append(l)
    return out


def ref_union(left: Sequence[Event], right: Sequence[Event]) -> List[Event]:
    """Reference Union: the bag union of both inputs."""
    return list(left) + list(right)
