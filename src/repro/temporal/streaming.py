"""Push-based streaming execution of CQ plans.

This is the deployment mode the paper's queries are "naturally ready"
for (Section III-C.1): the same logical plan that TiMR scales over
offline files here consumes a live feed event by event. Correctness
rests on the temporal algebra — output depends only on event lifetimes
— plus *watermarks* (StreamInsight's CTIs): pushing an event with
timestamp t promises that no earlier event will arrive on that source,
letting every operator emit exactly the outputs that are final.

The engine itself is a thin driver over the shared incremental runtime
(:class:`repro.runtime.Dataflow`): each push feeds one event into the
operator graph and advances it. The batch
:class:`~repro.temporal.Engine` drives the *same* graph in bounded
chunks, so ``pushed outputs + flush`` denote the same temporal relation
as a batch run over the same events by construction — a property the
test suite still checks with hypothesis-generated histories.

Usage::

    stream = StreamingEngine(query)
    for row in live_feed:                  # in timestamp order per source
        for out in stream.push("logs", row):
            deliver(out)
    tail = stream.flush()                  # end of stream

Restrictions: plans containing a *custom* AlterLifetime (opaque lifetime
functions) cannot bound how far output timestamps may precede input
timestamps and are rejected (:class:`StreamingUnsupported`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Union

from ..runtime.context import RunContext
from ..runtime.dataflow import Dataflow, StreamingUnsupported
from .event import Event, point_events
from .plan import GroupInputNode, PlanNode
from .query import Query
from .time import MAX_TIME, MIN_TIME

__all__ = [
    "EVENT_POLICIES",
    "QuarantinedEvent",
    "StreamingEngine",
    "StreamingUnsupported",
]

#: Valid values of :class:`StreamingEngine`'s ``event_policy``.
EVENT_POLICIES = ("raise", "drop", "quarantine")


@dataclass
class QuarantinedEvent:
    """A rejected input the engine set aside instead of failing on.

    Attributes:
        source: the source name the item was pushed on.
        item: the original row/event as pushed.
        reason: why it was rejected (too late, malformed, ...).
    """

    source: str
    item: object
    reason: str


class StreamingEngine:
    """Incremental execution of one CQ plan over pushed events.

    ``slack`` enables bounded out-of-order arrival (the disorder handling
    Section II-C notes custom reducers cannot do "without complex data
    structures"): an event may arrive up to ``slack`` ticks later than
    the newest event already pushed on its source. Late-but-in-slack
    events are reorder-buffered and the source watermark trails the
    newest timestamp by the slack, so every downstream result stays
    exact — latency is traded for disorder tolerance. Events later than
    the slack are rejected.

    ``event_policy`` decides what *rejected* means for inputs a live
    feed inevitably produces — events later than the slack allows and
    malformed rows (missing/invalid ``Time``):

    * ``"raise"`` (default): fail fast with ``ValueError`` — the
      strict mode batch-equivalence proofs assume.
    * ``"drop"``: silently discard, counting into :attr:`dropped`.
    * ``"quarantine"``: set the offending item aside in
      :attr:`quarantined` with its source and rejection reason — the
      streaming twin of the cluster's dead-letter dataset.

    Accepted events are processed identically under every policy, so
    outputs remain exact over the events that made it in.
    """

    def __init__(
        self,
        query: Union[Query, PlanNode],
        slack: int = 0,
        event_policy: str = "raise",
        tracer=None,
        *,
        context: Optional[RunContext] = None,
        _group_input: Optional[GroupInputNode] = None,
    ):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if event_policy not in EVENT_POLICIES:
            raise ValueError(
                f"event_policy must be one of {EVENT_POLICIES}, got {event_policy!r}"
            )
        self.slack = slack
        self.event_policy = event_policy
        self.context = RunContext.of(context, tracer=tracer)
        self.quarantined: List[QuarantinedEvent] = []
        self.dropped = 0
        self._reorder: Dict[str, List] = {}
        self._reorder_seq = itertools.count()
        root = query.to_plan() if isinstance(query, Query) else query
        self._flow = Dataflow(root, group_input=_group_input)
        self._flushed = False

    # -- public API -----------------------------------------------------------

    @property
    def tracer(self):
        return self.context.tracer

    @property
    def output_watermark(self) -> int:
        return self._flow.output_watermark

    def push(self, source: str, item: Union[Event, dict]) -> List[Event]:
        """Push one event (or row with a Time column) and return new
        final outputs of the query. Events must arrive in LE order per
        source; the push advances that source's watermark to the LE.

        Malformed items (no usable ``Time``) are handled per the
        engine's ``event_policy``."""
        # unknown sources always raise, whatever the policy
        self._flow.source_watermark(source)
        try:
            event = item if isinstance(item, Event) else point_events([item])[0]
        except Exception as exc:
            return self._reject(source, item, f"malformed event: {exc!r}")
        return self.push_event(source, event)

    def push_event(self, source: str, event: Event) -> List[Event]:
        if self.slack:
            return self._push_with_slack(source, event)
        watermark = self._flow.source_watermark(source)
        if event.le < watermark:
            return self._reject(
                source,
                event,
                f"out-of-order push on {source!r}: LE {event.le} < "
                f"watermark {watermark}",
            )
        self._flow.feed(source, (event,), event.le)
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_in", source=source
            ).inc()
        return self._emit()

    def _push_with_slack(self, source: str, event: Event) -> List[Event]:
        """Reorder-buffer a possibly-late event (within ``slack`` ticks)."""
        buffer = self._reorder.setdefault(source, [])
        newest = self._flow.source_watermark(source) + self.slack
        newest = max(newest, event.le)
        watermark = newest - self.slack
        if event.le < watermark:
            return self._reject(
                source,
                event,
                f"event on {source!r} is {watermark - event.le} ticks later "
                f"than the slack of {self.slack} allows",
            )
        heapq.heappush(buffer, (event.le, next(self._reorder_seq), event))
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_in", source=source
            ).inc()
        released: List[Event] = []
        while buffer and buffer[0][0] <= watermark:
            released.append(heapq.heappop(buffer)[2])
        self._flow.feed(source, released, watermark)
        return self._emit()

    def _drain_reorder_buffers(self) -> None:
        for source, buffer in self._reorder.items():
            released = []
            while buffer:
                released.append(heapq.heappop(buffer)[2])
            if released:  # bypass the watermark: flush accepts the tail
                self._flow.feed(source, released)

    def advance_to(self, watermark: int) -> List[Event]:
        """Declare every source silent before ``watermark`` (a CTI)."""
        self._flow.set_watermarks(watermark)
        return self._emit()

    def flush(self) -> List[Event]:
        """End of stream: emit everything still buffered."""
        if self._flushed:
            return []
        self._flushed = True
        if self.slack:
            self._drain_reorder_buffers()
        self._flow.set_watermarks(MAX_TIME)
        return self._emit()

    def run_all(self, sources: Dict[str, Iterable]) -> List[Event]:
        """Convenience: push entire (merged, LE-ordered) inputs and flush."""
        tagged = []
        for name, items in sources.items():
            for item in items:
                event = item if isinstance(item, Event) else point_events([item])[0]
                tagged.append((event.le, name, event))
        tagged.sort(key=lambda t: t[0])
        out: List[Event] = []
        for _, name, event in tagged:
            # keep all source watermarks aligned so joins make progress
            self._flow.set_watermarks(event.le)
            out.extend(self.push_event(name, event))
        out.extend(self.flush())
        return out

    # -- internals --------------------------------------------------------------

    def _reject(self, source: str, item: object, reason: str) -> List[Event]:
        """Apply the event policy to a late or malformed input."""
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_rejected",
                source=source,
                policy=self.event_policy,
            ).inc()
        if self.event_policy == "raise":
            raise ValueError(reason)
        if self.event_policy == "quarantine":
            self.quarantined.append(QuarantinedEvent(source, item, reason))
        else:
            self.dropped += 1
        return []

    def _emit(self) -> List[Event]:
        """Advance the dataflow and record streaming metrics."""
        out = self._flow.advance()
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            if out:
                metrics.counter("streaming.events_out").inc(len(out))
            # Watermark lag: how far finalized output trails the freshest
            # source promise, in *application-time* ticks (deterministic).
            src_w = self._flow.max_source_watermark()
            if MIN_TIME < src_w < MAX_TIME:
                lag = max(0, src_w - self._flow.output_watermark)
                metrics.gauge("streaming.watermark_lag").set(lag)
        return out
