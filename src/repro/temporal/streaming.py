"""Push-based streaming execution of CQ plans.

This is the deployment mode the paper's queries are "naturally ready"
for (Section III-C.1): the same logical plan that TiMR scales over
offline files here consumes a live feed event by event. Correctness
rests on the temporal algebra — output depends only on event lifetimes
— plus *watermarks* (StreamInsight's CTIs): pushing an event with
timestamp t promises that no earlier event will arrive on that source,
letting every operator emit exactly the outputs that are final.

Usage::

    stream = StreamingEngine(query)
    for row in live_feed:                  # in timestamp order per source
        for out in stream.push("logs", row):
            deliver(out)
    tail = stream.flush()                  # end of stream

The engine guarantees that ``pushed outputs + flush`` denote the same
temporal relation as a batch ``Engine.run`` over the same events — a
property the test suite checks with hypothesis-generated histories.

Restrictions: plans containing a *custom* AlterLifetime (opaque lifetime
functions) cannot bound how far output timestamps may precede input
timestamps and are rejected.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..obs.trace import NULL_TRACER
from .event import Event, point_events
from .plan import (
    ExchangeNode,
    GroupApplyNode,
    GroupInputNode,
    PlanNode,
    SourceNode,
    topological_order,
)
from .query import Query
from .time import MAX_TIME, MIN_TIME


class StreamingUnsupported(ValueError):
    """The plan cannot run incrementally (unbounded lifetime rewrites)."""


#: Valid values of :class:`StreamingEngine`'s ``event_policy``.
EVENT_POLICIES = ("raise", "drop", "quarantine")


@dataclass
class QuarantinedEvent:
    """A rejected input the engine set aside instead of failing on.

    Attributes:
        source: the source name the item was pushed on.
        item: the original row/event as pushed.
        reason: why it was rejected (too late, malformed, ...).
    """

    source: str
    item: object
    reason: str


def _future_extent(node: PlanNode) -> int:
    """How far this single node's output LEs may precede its input LEs."""
    future = node.streaming_future_extent()
    if future is None:
        raise StreamingUnsupported(
            f"operator {node.describe()!r} has an unbounded lifetime rewrite; "
            "it cannot run in streaming mode"
        )
    return future


class _InputBuffer:
    """One input side of a node: queued events plus the source watermark."""

    __slots__ = ("events", "watermark", "cursor")

    def __init__(self):
        self.events: List[Event] = []
        self.watermark: int = MIN_TIME
        self.cursor: int = 0  # index of the first un-consumed event

    def append(self, events: Iterable[Event], watermark: int) -> None:
        self.events.extend(events)
        self.watermark = max(self.watermark, watermark)

    def head(self) -> Optional[Event]:
        if self.cursor < len(self.events):
            return self.events[self.cursor]
        return None

    def pop(self) -> Event:
        e = self.events[self.cursor]
        self.cursor += 1
        if self.cursor > 1024 and self.cursor * 2 > len(self.events):
            del self.events[: self.cursor]
            self.cursor = 0
        return e


class _Node:
    """A live operator with buffered inputs and an append-only output log."""

    def __init__(self, plan_node: PlanNode, engine: "StreamingEngine"):
        self.plan_node = plan_node
        self.engine = engine
        self.inputs = [_InputBuffer() for _ in plan_node.inputs]
        self.outputs: List[Event] = []  # append-only; parents keep cursors
        self.watermark: int = MIN_TIME
        self.flushed = False
        self._operator = None
        if not isinstance(
            plan_node, (SourceNode, GroupInputNode, ExchangeNode, GroupApplyNode)
        ):
            self._operator = plan_node.make_operator()
        if isinstance(plan_node, GroupApplyNode):
            self._groups: Dict[Tuple, _GroupChain] = {}
            self._pending: List[Tuple[int, int, Event]] = []
            self._seq = itertools.count()

    # -- per-kind advance ----------------------------------------------------

    def advance(self) -> None:
        """Consume newly available input and emit what is now final."""
        node = self.plan_node
        if isinstance(node, (SourceNode, GroupInputNode)):
            return  # fed directly by the engine
        if isinstance(node, ExchangeNode):
            buf = self.inputs[0]
            while buf.head() is not None:
                self.outputs.append(buf.pop())
            self.watermark = buf.watermark
            return
        if isinstance(node, GroupApplyNode):
            self._advance_group_apply()
            return
        if len(self.inputs) == 1:
            self._advance_unary()
        else:
            self._advance_binary()

    def _advance_unary(self) -> None:
        buf = self.inputs[0]
        op = self._operator
        while buf.head() is not None:
            self.outputs.extend(op.on_event(buf.pop()))
        if buf.watermark >= MAX_TIME and not self.flushed:
            self.outputs.extend(op.on_flush())
            self.flushed = True
            self.watermark = MAX_TIME
        else:
            self.outputs.extend(op.on_watermark(buf.watermark))
            base = op.watermark_out(buf.watermark)
            self.watermark = max(
                self.watermark, base - _future_extent(self.plan_node)
            )

    def _advance_binary(self) -> None:
        left, right = self.inputs
        op = self._operator
        w = min(left.watermark, right.watermark)
        # deliver merged input up to the joint watermark, right side first
        # at ties (the synopsis-completeness guarantee of the batch path)
        while True:
            lh, rh = left.head(), right.head()
            if rh is not None and rh.le <= w and (lh is None or rh.le <= lh.le):
                self.outputs.extend(op.on_right(right.pop()))
            elif lh is not None and (
                lh.le < right.watermark or right.watermark >= MAX_TIME
            ):
                self.outputs.extend(op.on_left(left.pop()))
            else:
                break
        if w >= MAX_TIME and not self.flushed:
            # drain any tail in merged order, then flush
            while True:
                lh, rh = left.head(), right.head()
                if rh is not None and (lh is None or rh.le <= lh.le):
                    self.outputs.extend(op.on_right(right.pop()))
                elif lh is not None:
                    self.outputs.extend(op.on_left(left.pop()))
                else:
                    break
            self.outputs.extend(op.on_flush())
            self.flushed = True
            self.watermark = MAX_TIME
        else:
            self.watermark = max(self.watermark, w)

    def _advance_group_apply(self) -> None:
        node: GroupApplyNode = self.plan_node
        buf = self.inputs[0]
        while buf.head() is not None:
            event = buf.pop()
            key = tuple(event.payload[k] for k in node.keys)
            chain = self._groups.get(key)
            if chain is None:
                chain = _GroupChain(node, key, self.engine)
                self._groups[key] = chain
            for out in chain.push(event):
                heapq.heappush(self._pending, (out.le, next(self._seq), out))

        w = buf.watermark
        group_w = MAX_TIME if w >= MAX_TIME else w
        for chain in self._groups.values():
            for out in chain.advance(w):
                heapq.heappush(self._pending, (out.le, next(self._seq), out))
            group_w = min(group_w, chain.watermark)
        if w >= MAX_TIME:
            group_w = MAX_TIME
        while self._pending and self._pending[0][0] < group_w:
            self.outputs.append(heapq.heappop(self._pending)[2])
        if group_w >= MAX_TIME:
            while self._pending:
                self.outputs.append(heapq.heappop(self._pending)[2])
            self.flushed = True
        self.watermark = max(self.watermark, group_w)


class _GroupChain:
    """One group's live sub-plan inside a streaming GroupApply."""

    def __init__(self, node: GroupApplyNode, key: Tuple, engine: "StreamingEngine"):
        self.key_columns = dict(zip(node.keys, key))
        self.sub = StreamingEngine(
            node.subplan_root, _group_input=node.group_input
        )
        self.watermark = MIN_TIME

    def _attach_key(self, events: Iterable[Event]) -> List[Event]:
        out = []
        for e in events:
            payload = dict(e.payload)
            payload.update(self.key_columns)
            out.append(e.with_payload(payload))
        return out

    def push(self, event: Event) -> List[Event]:
        return self._attach_key(self.sub.push_event("<group>", event))

    def advance(self, watermark: int) -> List[Event]:
        if watermark >= MAX_TIME:
            outs = self._attach_key(self.sub.flush())
            self.watermark = MAX_TIME
        else:
            outs = self._attach_key(self.sub.advance_to(watermark))
            self.watermark = self.sub.output_watermark
        return outs


class StreamingEngine:
    """Incremental execution of one CQ plan over pushed events.

    ``slack`` enables bounded out-of-order arrival (the disorder handling
    Section II-C notes custom reducers cannot do "without complex data
    structures"): an event may arrive up to ``slack`` ticks later than
    the newest event already pushed on its source. Late-but-in-slack
    events are reorder-buffered and the source watermark trails the
    newest timestamp by the slack, so every downstream result stays
    exact — latency is traded for disorder tolerance. Events later than
    the slack are rejected.

    ``event_policy`` decides what *rejected* means for inputs a live
    feed inevitably produces — events later than the slack allows and
    malformed rows (missing/invalid ``Time``):

    * ``"raise"`` (default): fail fast with ``ValueError`` — the
      strict mode batch-equivalence proofs assume.
    * ``"drop"``: silently discard, counting into :attr:`dropped`.
    * ``"quarantine"``: set the offending item aside in
      :attr:`quarantined` with its source and rejection reason — the
      streaming twin of the cluster's dead-letter dataset.

    Accepted events are processed identically under every policy, so
    outputs remain exact over the events that made it in.
    """

    def __init__(
        self,
        query: Union[Query, PlanNode],
        slack: int = 0,
        event_policy: str = "raise",
        tracer=None,
        _group_input: Optional[GroupInputNode] = None,
    ):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if event_policy not in EVENT_POLICIES:
            raise ValueError(
                f"event_policy must be one of {EVENT_POLICIES}, got {event_policy!r}"
            )
        self.slack = slack
        self.event_policy = event_policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.quarantined: List[QuarantinedEvent] = []
        self.dropped = 0
        self._reorder: Dict[str, List] = {}
        self._reorder_seq = itertools.count()
        root = query.to_plan() if isinstance(query, Query) else query
        self._order = topological_order(root)
        self._nodes: Dict[int, _Node] = {}
        # several SourceNode objects may share one name (a multicast
        # written as two Query.source("x") calls); all of them are fed
        self._sources: Dict[str, List[_Node]] = {}
        self._parents: Dict[int, List[Tuple[_Node, int]]] = {}
        self._cursors: Dict[Tuple[int, int], int] = {}
        for plan_node in self._order:
            _future_extent(plan_node)  # validates streamability up front
            node = _Node(plan_node, self)
            self._nodes[plan_node.node_id] = node
            if isinstance(plan_node, SourceNode):
                self._sources.setdefault(plan_node.name, []).append(node)
            if _group_input is not None and plan_node is _group_input:
                self._sources.setdefault("<group>", []).append(node)
        for plan_node in self._order:
            for i, child in enumerate(plan_node.inputs):
                self._parents.setdefault(child.node_id, []).append(
                    (self._nodes[plan_node.node_id], i)
                )
        self._root = self._nodes[root.node_id]
        self._released = 0
        self._flushed = False

    # -- public API -----------------------------------------------------------

    @property
    def output_watermark(self) -> int:
        return self._root.watermark

    def push(self, source: str, item: Union[Event, dict]) -> List[Event]:
        """Push one event (or row with a Time column) and return new
        final outputs of the query. Events must arrive in LE order per
        source; the push advances that source's watermark to the LE.

        Malformed items (no usable ``Time``) are handled per the
        engine's ``event_policy``."""
        self._source(source)  # unknown sources always raise, whatever the policy
        try:
            event = item if isinstance(item, Event) else point_events([item])[0]
        except Exception as exc:
            return self._reject(source, item, f"malformed event: {exc!r}")
        return self.push_event(source, event)

    def push_event(self, source: str, event: Event) -> List[Event]:
        if self.slack:
            return self._push_with_slack(source, event)
        nodes = self._source(source)
        late_behind = max((n.watermark for n in nodes), default=MIN_TIME)
        if any(event.le < node.watermark for node in nodes):
            return self._reject(
                source,
                event,
                f"out-of-order push on {source!r}: LE {event.le} < "
                f"watermark {late_behind}",
            )
        for node in nodes:
            node.outputs.append(event)
            node.watermark = event.le
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_in", source=source
            ).inc()
        return self._propagate()

    def _push_with_slack(self, source: str, event: Event) -> List[Event]:
        """Reorder-buffer a possibly-late event (within ``slack`` ticks)."""
        nodes = self._source(source)
        buffer = self._reorder.setdefault(source, [])
        newest = max((n.watermark + self.slack for n in nodes), default=MIN_TIME)
        newest = max(newest, event.le)
        watermark = newest - self.slack
        if event.le < watermark:
            return self._reject(
                source,
                event,
                f"event on {source!r} is {watermark - event.le} ticks later "
                f"than the slack of {self.slack} allows",
            )
        heapq.heappush(buffer, (event.le, next(self._reorder_seq), event))
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_in", source=source
            ).inc()
        released: List[Event] = []
        while buffer and buffer[0][0] <= watermark:
            released.append(heapq.heappop(buffer)[2])
        for node in nodes:
            node.outputs.extend(released)
            node.watermark = max(node.watermark, watermark)
        return self._propagate()

    def _drain_reorder_buffers(self) -> None:
        for source, buffer in self._reorder.items():
            if not buffer:
                continue
            nodes = self._source(source)
            while buffer:
                event = heapq.heappop(buffer)[2]
                for node in nodes:
                    node.outputs.append(event)

    def advance_to(self, watermark: int) -> List[Event]:
        """Declare every source silent before ``watermark`` (a CTI)."""
        for nodes in self._sources.values():
            for node in nodes:
                node.watermark = max(node.watermark, watermark)
        return self._propagate()

    def flush(self) -> List[Event]:
        """End of stream: emit everything still buffered."""
        if self._flushed:
            return []
        self._flushed = True
        if self.slack:
            self._drain_reorder_buffers()
        for nodes in self._sources.values():
            for node in nodes:
                node.watermark = MAX_TIME
        return self._propagate()

    def run_all(self, sources: Dict[str, Iterable]) -> List[Event]:
        """Convenience: push entire (merged, LE-ordered) inputs and flush."""
        tagged = []
        for name, items in sources.items():
            for item in items:
                event = item if isinstance(item, Event) else point_events([item])[0]
                tagged.append((event.le, name, event))
        tagged.sort(key=lambda t: t[0])
        out: List[Event] = []
        for _, name, event in tagged:
            # keep all source watermarks aligned so joins make progress
            for nodes in self._sources.values():
                for node in nodes:
                    node.watermark = max(node.watermark, event.le)
            out.extend(self.push_event(name, event))
        out.extend(self.flush())
        return out

    # -- internals --------------------------------------------------------------

    def _reject(self, source: str, item: object, reason: str) -> List[Event]:
        """Apply the event policy to a late or malformed input."""
        if self.tracer.enabled:
            self.tracer.metrics.counter(
                "streaming.events_rejected",
                source=source,
                policy=self.event_policy,
            ).inc()
        if self.event_policy == "raise":
            raise ValueError(reason)
        if self.event_policy == "quarantine":
            self.quarantined.append(QuarantinedEvent(source, item, reason))
        else:
            self.dropped += 1
        return []

    def _source(self, name: str) -> List[_Node]:
        try:
            return self._sources[name]
        except KeyError:
            raise KeyError(
                f"unknown source {name!r}; have {sorted(self._sources)}"
            ) from None

    def _propagate(self) -> List[Event]:
        for plan_node in self._order:
            node = self._nodes[plan_node.node_id]
            for i, child in enumerate(plan_node.inputs):
                child_node = self._nodes[child.node_id]
                key = (plan_node.node_id, i)
                cursor = self._cursors.get(key, 0)
                fresh = child_node.outputs[cursor:]
                self._cursors[key] = cursor + len(fresh)
                node.inputs[i].append(fresh, child_node.watermark)
            node.advance()
        out = self._root.outputs[self._released :]
        self._released = len(self._root.outputs)
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            if out:
                metrics.counter("streaming.events_out").inc(len(out))
            # Watermark lag: how far finalized output trails the freshest
            # source promise, in *application-time* ticks (deterministic).
            src_w = max(
                (
                    n.watermark
                    for nodes in self._sources.values()
                    for n in nodes
                ),
                default=MIN_TIME,
            )
            if MIN_TIME < src_w < MAX_TIME:
                lag = max(0, src_w - self._root.watermark)
                metrics.gauge("streaming.watermark_lag").set(lag)
        return out
