"""``repro.data`` — synthetic advertising workload.

Replaces the paper's proprietary week of ad-platform logs with a seeded
generator producing the unified schema of Figure 9 (Time, StreamId,
UserId, KwAdId) with planted keyword→click correlations, bots, and a
mid-week keyword trend. See DESIGN.md for the substitution argument.
"""

from .concepts import NUM_CATEGORIES, ConceptHierarchy
from .generator import (
    CLICK,
    IMPRESSION,
    KEYWORD,
    AdLogDataset,
    GeneratorConfig,
    GroundTruth,
    generate,
)
from .vocab import (
    AD_CLASSES,
    GENERIC_KEYWORDS,
    NEGATIVE_KEYWORDS,
    POSITIVE_KEYWORDS,
    all_planted_keywords,
    background_keyword,
)

__all__ = [
    "AD_CLASSES",
    "AdLogDataset",
    "CLICK",
    "ConceptHierarchy",
    "GENERIC_KEYWORDS",
    "GeneratorConfig",
    "GroundTruth",
    "IMPRESSION",
    "KEYWORD",
    "NEGATIVE_KEYWORDS",
    "NUM_CATEGORIES",
    "POSITIVE_KEYWORDS",
    "all_planted_keywords",
    "background_keyword",
    "generate",
]
