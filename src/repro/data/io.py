"""Saving and loading generated workloads.

A generated :class:`~repro.data.generator.AdLogDataset` snapshot keeps
the rows (as a partitioned JSONL dataset), the generator configuration,
and the planted ground truth, so experiments can be replayed without
regenerating — and so the CLI's ``generate`` command has something to
write.
"""

from __future__ import annotations

import dataclasses
import json
import os

from ..mapreduce.fs import DistributedFile
from ..mapreduce.persist import load_file, save_file
from .generator import AdLogDataset, GeneratorConfig, GroundTruth

_DATASET_NAME = "logs"
_CONFIG_FILE = "config.json"
_TRUTH_FILE = "truth.json"


def save_dataset(dataset: AdLogDataset, directory: str, num_partitions: int = 8) -> str:
    """Write a dataset snapshot under ``directory``."""
    os.makedirs(directory, exist_ok=True)
    partitions = [[] for _ in range(num_partitions)]
    for i, row in enumerate(dataset.rows):
        partitions[i % num_partitions].append(row)
    save_file(DistributedFile(_DATASET_NAME, partitions), directory)

    with open(os.path.join(directory, _CONFIG_FILE), "w", encoding="utf-8") as f:
        json.dump(dataclasses.asdict(dataset.config), f, indent=2, sort_keys=True)

    truth = dataset.truth
    with open(os.path.join(directory, _TRUTH_FILE), "w", encoding="utf-8") as f:
        json.dump(
            {
                "bots": sorted(truth.bots),
                "liked": {u: list(v) for u, v in truth.liked.items()},
                "disliked": {u: list(v) for u, v in truth.disliked.items()},
                "demographics": dict(truth.demographics),
            },
            f,
            sort_keys=True,
        )
    return directory


def load_dataset(directory: str) -> AdLogDataset:
    """Read a snapshot written by :func:`save_dataset`."""
    with open(os.path.join(directory, _CONFIG_FILE), encoding="utf-8") as f:
        config = GeneratorConfig(**json.load(f))
    with open(os.path.join(directory, _TRUTH_FILE), encoding="utf-8") as f:
        raw = json.load(f)
    truth = GroundTruth(
        bots=set(raw["bots"]),
        liked={u: tuple(v) for u, v in raw["liked"].items()},
        disliked={u: tuple(v) for u, v in raw["disliked"].items()},
        demographics=dict(raw.get("demographics", {})),
    )
    rows = load_file(directory, _DATASET_NAME).all_rows()
    rows.sort(key=lambda r: (r["Time"], r["StreamId"], r["UserId"], r["KwAdId"]))
    return AdLogDataset(rows=rows, config=config, truth=truth)
