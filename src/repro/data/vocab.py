"""Vocabulary for the synthetic advertising workload.

The paper's experiments run on a week of proprietary Microsoft ad-platform
logs with ~50M distinct keywords and 10 popular ad classes. We stand in a
synthetic vocabulary with the same *causal structure*:

* per-ad-class keyword sets that are positively / negatively correlated
  with clicks — seeded with the actual keywords the paper reports in
  Figures 17-19 (icarly→deodorant, dell→laptop, blackberry→cellphone,
  jobless⊣deodorant, vera wang⊣laptop, ...);
* popular-but-uninformative keywords (facebook, google, msn, ...) that
  frequency-based selection (KE-pop) wrongly retains;
* a Zipf-distributed background tail of meaningless keywords.
"""

from __future__ import annotations

from typing import Dict, List

#: The ten most popular ad classes in our synthetic platform (Section V-A
#: uses the 10 most popular classes of the real platform).
AD_CLASSES: List[str] = [
    "deodorant",
    "laptop",
    "cellphone",
    "movies",
    "dieting",
    "games",
    "travel",
    "insurance",
    "fitness",
    "finance",
]

#: Keywords positively correlated with clicks, per ad class. The first
#: three classes reproduce Figures 17-19; the rest are analogous.
POSITIVE_KEYWORDS: Dict[str, List[str]] = {
    "deodorant": [
        "celebrity", "icarly", "tattoo", "games", "chat",
        "videos", "hannah", "exam", "music", "prom",
    ],
    "laptop": [
        "dell", "laptops", "computers", "juris", "toshiba",
        "vostro", "hp", "notebook", "ssd", "linux",
    ],
    "cellphone": [
        "blackberry", "curve", "enable", "tmobile", "phones",
        "wireless", "att", "verizon", "smartphone", "sms",
    ],
    "movies": [
        "trailer", "imdb", "netflix", "theater", "actors",
        "oscar", "premiere", "cinema", "dvd", "sequel",
    ],
    "dieting": [
        "calories", "weightloss", "lowcarb", "slim", "detox",
        "nutrition", "bmi", "fasting", "smoothie", "keto",
    ],
    "games": [
        "xbox", "warcraft", "cheats", "console", "rpg",
        "multiplayer", "arcade", "zelda", "sims", "tetris",
    ],
    "travel": [
        "flights", "hotels", "beach", "resort", "passport",
        "cruise", "itinerary", "backpacking", "visa", "airfare",
    ],
    "insurance": [
        "premium", "deductible", "liability", "geico", "actuary",
        "coverage", "claims", "underwriting", "quote", "policy",
    ],
    "fitness": [
        "gym", "workout", "protein", "treadmill", "yoga",
        "pilates", "marathon", "dumbbell", "cardio", "crossfit",
    ],
    "finance": [
        "stocks", "dividend", "portfolio", "etf", "bonds",
        "brokerage", "retirement", "401k", "hedge", "forex",
    ],
}

#: Keywords negatively correlated with clicks, per ad class.
NEGATIVE_KEYWORDS: Dict[str, List[str]] = {
    "deodorant": [
        "verizon", "construct", "service", "ford", "hotels",
        "jobless", "pilot", "credit", "craigslist",
    ],
    "laptop": [
        "pregnant", "stars", "wang", "vera", "dancing",
        "myspace", "facebook", "gardening",
    ],
    "cellphone": [
        "recipes", "times", "national", "hotels", "people",
        "baseball", "porn", "myspace",
    ],
    "movies": [
        "mortgage", "gardening", "plumbing", "spreadsheet", "tax",
        "lawnmower", "antacid",
    ],
    "dieting": [
        "buffet", "bacon", "frosting", "deepfry", "soda",
        "candy", "milkshake",
    ],
    "games": [
        "retirement", "gout", "dentures", "knitting", "estate",
        "arthritis",
    ],
    "travel": [
        "foreclosure", "bankruptcy", "unemployment", "eviction",
        "payday", "pawn",
    ],
    "insurance": [
        "skateboard", "concert", "dorm", "spring", "tattoo",
        "festival",
    ],
    "fitness": [
        "recliner", "takeout", "marathon_tv", "couch", "snack",
        "remote",
    ],
    "finance": [
        "jobless", "payday", "lottery", "pawn", "overdraft",
        "repossession",
    ],
}

#: Very frequent keywords with no click correlation — the trap for
#: popularity-based feature selection (Section V-C: KE-pop "retains
#: common words such as google, facebook, and msn, which were found to be
#: irrelevant to ad clicks").
GENERIC_KEYWORDS: List[str] = [
    "google", "facebook", "msn", "youtube", "weather",
    "news", "maps", "email", "amazon", "wikipedia",
    "ebay", "yahoo", "craigslist_home", "translate", "horoscope",
]


def background_keyword(i: int) -> str:
    """The i-th background (noise) keyword."""
    return f"kw{i:05d}"


def all_planted_keywords() -> List[str]:
    """Every keyword with a planted correlation (for tests)."""
    out = set(GENERIC_KEYWORDS)
    for words in POSITIVE_KEYWORDS.values():
        out.update(words)
    for words in NEGATIVE_KEYWORDS.values():
        out.update(words)
    return sorted(out)
