"""A synthetic concept hierarchy for the F-Ex baseline.

The production alternative the paper compares against (Section V-C)
performs *feature extraction*: a content categorization engine maps every
keyword to one or more of ~2000 predefined categories from an ODP-like
concept hierarchy. Its defining properties, which we reproduce:

* fixed dimensionality (~2000 categories regardless of data);
* a static mapping that cannot adapt to new keywords or trends;
* signal dilution — informative and uninformative keywords hash into the
  same coarse categories.

The mapping is deterministic (stable hash of the keyword), so the same
keyword always lands in the same categories, like a real static engine.
"""

from __future__ import annotations

from typing import Dict, List

from ..mapreduce.job import stable_hash

#: Size of the predefined concept hierarchy ("this number is always
#: around 2000 due to the static mapping", Section V-C).
NUM_CATEGORIES: int = 2000


def category_name(i: int) -> str:
    return f"cat{i:04d}"


class ConceptHierarchy:
    """Static keyword → categories mapping (1 to 3 categories each)."""

    def __init__(self, num_categories: int = NUM_CATEGORIES):
        if num_categories < 1:
            raise ValueError("need at least one category")
        self.num_categories = num_categories

    def categories_for(self, keyword: str) -> List[str]:
        """The 1-3 categories a keyword maps to (deterministic).

        Figure-20 context: "each keyword potentially maps to 3
        categories", which is why F-Ex *grows* per-profile memory.
        """
        h = stable_hash(("concept", keyword))
        count = 1 + h % 3
        cats = []
        for j in range(count):
            idx = stable_hash(("concept", keyword, j)) % self.num_categories
            cats.append(category_name(idx))
        return sorted(set(cats))

    def map_profile(self, keyword_counts: Dict[str, float]) -> Dict[str, float]:
        """Rewrite a keyword-space behavior profile into category space."""
        out: Dict[str, float] = {}
        for keyword, weight in keyword_counts.items():
            for cat in self.categories_for(keyword):
                out[cat] = out.get(cat, 0.0) + weight
        return out
