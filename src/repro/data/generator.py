"""Synthetic advertising-log generator.

Stands in for the paper's proprietary week of ad-platform logs (several
TB; 250M users; 50M keywords). The generator plants exactly the causal
structure the paper's BT experiments measure, so relative results
(z-score rankings, CTR lift vs. coverage, dimensionality reduction) hold
at laptop scale:

* every user has a *persona*: liked ad classes (they search those
  classes' positive keywords and click their ads more) and disliked ad
  classes (they search those classes' negative keywords and click less);
* the click decision at an impression depends **only on the user's
  searches in the preceding 6-hour window** — the exact "ad click
  likelihood depends only on the UBP at the time of the ad presentation"
  insight of Section IV-A;
* ~0.5% of users are bots with ~30x activity and uncorrelated clicks,
  contributing ~13% of events (Section IV-B.1) and diluting every
  correlation until they are eliminated;
* a keyword trend: searches for ``icarly`` spike mid-week among the teen
  demographic (Example 2).

All randomness flows through one seeded ``numpy`` generator: the same
config always produces byte-identical logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..temporal.time import days, hours, minutes, seconds
from . import vocab
from .vocab import AD_CLASSES, GENERIC_KEYWORDS, NEGATIVE_KEYWORDS, POSITIVE_KEYWORDS

#: StreamId values of the unified schema (Figure 9).
IMPRESSION, CLICK, KEYWORD = 0, 1, 2


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic workload (defaults are laptop-scale)."""

    num_users: int = 1000
    duration_days: float = 7.0
    seed: int = 42

    # activity volumes
    searches_per_user_per_day: float = 12.0
    impressions_per_user_per_day: float = 8.0

    # keyword mixture for normal users
    persona_share: float = 0.5
    generic_share: float = 0.25
    num_background_keywords: int = 5000
    background_zipf_a: float = 1.4

    # click model
    base_ctr: float = 0.05
    positive_boost: float = 8.0
    negative_damp: float = 0.25
    max_ctr: float = 0.85
    ubp_window: int = hours(6)
    click_delay_max: int = minutes(4)  # < the 5-minute non-click horizon

    # personas
    liked_classes_min: int = 1
    liked_classes_max: int = 3
    disliked_classes_min: int = 1
    disliked_classes_max: int = 2
    #: negative-correlation keywords are searched this much more often
    #: than positive ones (job hunters search "jobless"/"credit" a lot);
    #: this gives the z-test enough click-support on the negative side at
    #: laptop scale.
    negative_keyword_weight: float = 3.0
    #: how strongly a user's demographic biases their liked ad classes
    #: (0 = uniform interests, 1 = only demographic-typical interests)
    demographic_bias: float = 0.7

    # bots (Section IV-B.1: 0.5% of users, 13% of clicks and searches)
    bot_fraction: float = 0.005
    bot_activity_multiplier: float = 30.0
    bot_click_probability: float = 0.25

    # the Example 2 trend: an icarly spike in the teen demographic
    trend_keyword: str = "icarly"
    trend_class: str = "deodorant"
    trend_start_day: float = 3.0
    trend_duration_days: float = 1.5
    trend_intensity: float = 6.0  # extra trend searches/day for fans

    @property
    def duration(self) -> int:
        return days(self.duration_days)


@dataclass
class GroundTruth:
    """What the generator planted (for verifying the miners find it)."""

    bots: Set[str]
    liked: Dict[str, Tuple[str, ...]]  # user -> liked ad classes
    disliked: Dict[str, Tuple[str, ...]]
    #: user -> demographic bucket ("teen" / "adult" / "senior"); interests
    #: are demographic-biased, the signal the Hu-et-al.-style demographic
    #: prediction task recovers from browsing behavior
    demographics: Dict[str, str] = field(default_factory=dict)
    positive_keywords: Dict[str, List[str]] = field(
        default_factory=lambda: {c: list(v) for c, v in POSITIVE_KEYWORDS.items()}
    )
    negative_keywords: Dict[str, List[str]] = field(
        default_factory=lambda: {c: list(v) for c, v in NEGATIVE_KEYWORDS.items()}
    )


@dataclass
class AdLogDataset:
    """A generated unified log (Figure 9 schema) plus its ground truth."""

    rows: List[dict]
    config: GeneratorConfig
    truth: GroundTruth

    def split_by_time(self, fraction: float = 0.5) -> Tuple[List[dict], List[dict]]:
        """Chronological train/test split (the paper splits the week evenly)."""
        cut = int(self.config.duration * fraction)
        train = [r for r in self.rows if r["Time"] < cut]
        test = [r for r in self.rows if r["Time"] >= cut]
        return train, test

    def rows_of(self, stream_id: int) -> List[dict]:
        return [r for r in self.rows if r["StreamId"] == stream_id]


#: Hour-of-day activity weights (diurnal pattern; midnight trough).
_DIURNAL = np.array(
    [1, 1, 1, 1, 1, 2, 3, 5, 7, 8, 8, 8, 9, 9, 8, 8, 8, 9, 10, 10, 9, 6, 3, 2],
    dtype=float,
)
_DIURNAL /= _DIURNAL.sum()


def generate(config: Optional[GeneratorConfig] = None) -> AdLogDataset:
    """Generate a unified advertising log for ``config``."""
    cfg = config or GeneratorConfig()
    rng = np.random.default_rng(cfg.seed)

    users = [f"u{i:06d}" for i in range(cfg.num_users)]
    num_bots = max(0, int(round(cfg.num_users * cfg.bot_fraction)))
    bot_ids = set(rng.choice(cfg.num_users, size=num_bots, replace=False).tolist())

    background = [
        vocab.background_keyword(i) for i in range(cfg.num_background_keywords)
    ]
    zipf_weights = 1.0 / np.arange(1, cfg.num_background_keywords + 1) ** cfg.background_zipf_a
    zipf_weights /= zipf_weights.sum()

    trend_lo = days(cfg.trend_start_day)
    trend_hi = min(trend_lo + days(cfg.trend_duration_days), cfg.duration)
    if trend_hi <= trend_lo:
        trend_lo = trend_hi = 0  # dataset too short for the trend window

    rows: List[dict] = []
    liked_map: Dict[str, Tuple[str, ...]] = {}
    disliked_map: Dict[str, Tuple[str, ...]] = {}
    demographic_map: Dict[str, str] = {}
    bots: Set[str] = set()

    for uid_index, user in enumerate(users):
        is_bot = uid_index in bot_ids
        if is_bot:
            bots.add(user)
            _generate_bot(rng, cfg, user, background, zipf_weights, rows)
            continue

        demographic = _draw_demographic(rng)
        demographic_map[user] = demographic
        liked, disliked = _draw_persona(rng, cfg, demographic)
        liked_map[user] = liked
        disliked_map[user] = disliked
        _generate_user(
            rng, cfg, user, liked, disliked, background, zipf_weights,
            trend_lo, trend_hi, rows,
        )

    rows.sort(key=lambda r: (r["Time"], r["StreamId"], r["UserId"], r["KwAdId"]))
    truth = GroundTruth(
        bots=bots,
        liked=liked_map,
        disliked=disliked_map,
        demographics=demographic_map,
    )
    return AdLogDataset(rows=rows, config=cfg, truth=truth)


# ---------------------------------------------------------------------------
# internals
# ---------------------------------------------------------------------------


#: Demographic buckets, their population shares, and their typical ad
#: classes (the interest bias the demographic-prediction task recovers).
DEMOGRAPHICS: Dict[str, Tuple[float, Tuple[str, ...]]] = {
    "teen": (0.25, ("deodorant", "games", "movies", "cellphone")),
    "adult": (0.55, ("laptop", "dieting", "fitness", "travel", "movies")),
    "senior": (0.20, ("insurance", "finance", "travel")),
}


def _draw_demographic(rng) -> str:
    names = list(DEMOGRAPHICS)
    shares = np.array([DEMOGRAPHICS[n][0] for n in names])
    return names[int(rng.choice(len(names), p=shares / shares.sum()))]


def _draw_persona(
    rng, cfg, demographic: Optional[str] = None
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    n_like = int(rng.integers(cfg.liked_classes_min, cfg.liked_classes_max + 1))
    if demographic is not None and cfg.demographic_bias > 0:
        typical = DEMOGRAPHICS[demographic][1]
        weights = np.array(
            [
                1.0 + cfg.demographic_bias * 10.0 * (c in typical)
                for c in AD_CLASSES
            ]
        )
        weights /= weights.sum()
        idx = rng.choice(len(AD_CLASSES), size=n_like, replace=False, p=weights)
        liked = tuple(AD_CLASSES[int(i)] for i in idx)
    else:
        liked = tuple(rng.choice(AD_CLASSES, size=n_like, replace=False).tolist())
    remaining = [c for c in AD_CLASSES if c not in liked]
    n_dis = int(rng.integers(cfg.disliked_classes_min, cfg.disliked_classes_max + 1))
    disliked = tuple(rng.choice(remaining, size=n_dis, replace=False).tolist())
    return liked, disliked


def _activity_times(rng, cfg, rate_per_day: float) -> np.ndarray:
    """Event timestamps over the dataset with a diurnal profile, sorted."""
    total = rng.poisson(rate_per_day * cfg.duration_days)
    if total == 0:
        return np.empty(0, dtype=np.int64)
    day = rng.integers(0, max(1, int(cfg.duration_days)), size=total)
    frac_days = cfg.duration_days - int(cfg.duration_days)
    if frac_days > 0:
        # allow a fractional trailing day
        extra = rng.random(total) < frac_days / cfg.duration_days
        day = np.where(extra, int(cfg.duration_days), day)
    hour = rng.choice(24, size=total, p=_DIURNAL)
    offset = rng.integers(0, hours(1), size=total)
    times = day * days(1) + hour * hours(1) + offset
    times = times[times < cfg.duration]
    times.sort()
    return times.astype(np.int64)


def _generate_user(
    rng, cfg, user, liked, disliked, background, zipf_weights, trend_lo, trend_hi, rows
):
    # -- searches -----------------------------------------------------------
    persona_pos = [kw for c in liked for kw in POSITIVE_KEYWORDS[c]]
    persona_neg = [kw for c in disliked for kw in NEGATIVE_KEYWORDS[c]]
    persona_pool = persona_pos + persona_neg
    if persona_pool:
        weights = np.array(
            [1.0] * len(persona_pos)
            + [cfg.negative_keyword_weight] * len(persona_neg)
        )
        weights /= weights.sum()
    else:
        weights = None

    search_times = _activity_times(rng, cfg, cfg.searches_per_user_per_day)
    search_kws: List[str] = []
    for _ in range(len(search_times)):
        r = rng.random()
        if persona_pool and r < cfg.persona_share:
            search_kws.append(
                persona_pool[int(rng.choice(len(persona_pool), p=weights))]
            )
        elif r < cfg.persona_share + cfg.generic_share:
            search_kws.append(GENERIC_KEYWORDS[int(rng.integers(len(GENERIC_KEYWORDS)))])
        else:
            search_kws.append(background[int(rng.choice(len(background), p=zipf_weights))])

    # the Example 2 trend: fans of the trend class search the trend keyword
    if cfg.trend_class in liked and cfg.trend_intensity > 0 and trend_hi > trend_lo:
        n_trend = rng.poisson(cfg.trend_intensity * cfg.trend_duration_days)
        if n_trend:
            t_times = rng.integers(trend_lo, trend_hi, size=n_trend)
            search_times = np.concatenate([search_times, t_times])
            search_kws.extend([cfg.trend_keyword] * n_trend)
            order = np.argsort(search_times, kind="stable")
            search_times = search_times[order]
            search_kws = [search_kws[i] for i in order]

    for t, kw in zip(search_times, search_kws):
        rows.append({"Time": int(t), "StreamId": KEYWORD, "UserId": user, "KwAdId": kw})

    # -- impressions and clicks ---------------------------------------------
    imp_times = _activity_times(rng, cfg, cfg.impressions_per_user_per_day)
    ad_choices = rng.integers(0, len(AD_CLASSES), size=len(imp_times))
    for t, ad_idx in zip(imp_times, ad_choices):
        ad = AD_CLASSES[int(ad_idx)]
        rows.append({"Time": int(t), "StreamId": IMPRESSION, "UserId": user, "KwAdId": ad})
        p = _click_probability(cfg, ad, search_times, search_kws, int(t))
        if rng.random() < p:
            delay = int(rng.integers(seconds(5), cfg.click_delay_max))
            rows.append(
                {"Time": int(t) + delay, "StreamId": CLICK, "UserId": user, "KwAdId": ad}
            )


def _click_probability(
    cfg, ad: str, search_times: np.ndarray, search_kws: Sequence[str], t: int
) -> float:
    """Click likelihood as a pure function of the 6-hour UBP at time t."""
    lo = np.searchsorted(search_times, t - cfg.ubp_window, side="right")
    hi = np.searchsorted(search_times, t, side="left")
    positives = set(POSITIVE_KEYWORDS[ad])
    negatives = set(NEGATIVE_KEYWORDS[ad])
    p = cfg.base_ctr
    for i in range(int(lo), int(hi)):
        kw = search_kws[i]
        if kw in positives:
            p *= cfg.positive_boost
        elif kw in negatives:
            p *= cfg.negative_damp
    return min(p, cfg.max_ctr)


def _generate_bot(rng, cfg, user, background, zipf_weights, rows):
    """Bots: huge uncorrelated activity (automated surfers and clickers)."""
    rate = cfg.searches_per_user_per_day * cfg.bot_activity_multiplier
    for t in _activity_times(rng, cfg, rate):
        kw = background[int(rng.choice(len(background), p=zipf_weights))]
        rows.append({"Time": int(t), "StreamId": KEYWORD, "UserId": user, "KwAdId": kw})

    imp_rate = cfg.impressions_per_user_per_day * cfg.bot_activity_multiplier
    imp_times = _activity_times(rng, cfg, imp_rate)
    ad_choices = rng.integers(0, len(AD_CLASSES), size=len(imp_times))
    for t, ad_idx in zip(imp_times, ad_choices):
        ad = AD_CLASSES[int(ad_idx)]
        rows.append({"Time": int(t), "StreamId": IMPRESSION, "UserId": user, "KwAdId": ad})
        if rng.random() < cfg.bot_click_probability:
            delay = int(rng.integers(seconds(5), cfg.click_delay_max))
            rows.append(
                {"Time": int(t) + delay, "StreamId": CLICK, "UserId": user, "KwAdId": ad}
            )
