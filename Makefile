PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test test-stress lint selflint ruff chaos chaos-parallel bench-smoke bench-compare bench-scale bench-trend race-check

check: test selflint chaos ruff

test:
	$(PYTHON) -m pytest -x -q

# opt-in stress/soak tier: worker-kill chaos, wave batching, and the
# columnar format all at once, plus leaked-process / leaked-fd checks.
# Deselected from the default run by addopts (-m "not stress").
test-stress:
	$(PYTHON) -m pytest -x -q -m stress tests/stress

# end-to-end fault-tolerance suite: full BT pipeline fault-free vs under
# a seeded fault schedule vs killed-and-resumed; asserts byte-identical
# output (see docs/FAULT_TOLERANCE.md)
chaos:
	$(PYTHON) -m repro chaos

# the same suite under the supervised process executor, plus the
# executor-chaos phase: seeded worker-kills mid-run, asserting the
# output hash matches the unfailed baseline (docs/PARALLELISM.md,
# "Worker failure semantics"); the JSON report carries phase timings
# and is folded into the CI benchmark artifact upload
chaos-parallel:
	@mkdir -p profile_out
	$(PYTHON) -m repro chaos --executor process --workers 4 \
		--json > profile_out/chaos_parallel.json
	@$(PYTHON) -c "import json; d = json.load(open('profile_out/chaos_parallel.json')); \
		assert d['passed'], d; ec = d['executor_chaos']; \
		print('chaos-parallel passed:', ec['injected'], 'worker fault(s),', \
		'byte_identical =', ec['byte_identical'])"

# fast machine-readable benchmark: events/sec + peak heap per builtin
# BT query, a memory-scaling series, per-stage wall times of the
# combined TiMR job, the serial-vs-parallel speedup table, and the
# row-vs-columnar batch-format table, written to
# profile_out/BENCH_current.json (profile_out/ is git-ignored; CI
# uploads it as a non-gating artifact). Committed reference baselines
# live in benchmarks/baselines/.
bench-smoke:
	@mkdir -p profile_out
	$(PYTHON) benchmarks/bench_smoke.py --out profile_out/BENCH_current.json

# re-measure into a scratch artifact and compare against the committed
# baseline: per-query events/sec (noisy, loose threshold) plus the
# serial-vs-parallel speedup ratios, which divide runner speed out and
# are stable enough to gate CI on
bench-compare:
	@mkdir -p profile_out
	$(PYTHON) benchmarks/bench_smoke.py --out profile_out/BENCH_current.json \
		--baseline benchmarks/baselines/BENCH_pr10.json \
		--gate queries,parallel

# the millions-of-events scaling table on top of the smoke sections:
# serial vs thread vs process with wave batching, recording both the
# honest measured wall ratio and the labeled critical-path projection
# (see the scale section docs in benchmarks/bench_smoke.py). This is
# how benchmarks/baselines/BENCH_pr10.json was produced.
bench-scale:
	@mkdir -p profile_out
	$(PYTHON) benchmarks/bench_smoke.py --out profile_out/BENCH_scale.json \
		--scale-rows 1000000

# run-over-run tracking: append the current artifact to
# profile_out/BENCH_history.jsonl and compare against the best-known
# per-query events/sec across every committed baseline and prior
# history entry. Always exits 0 (the report is advisory; pass --strict
# to gate).
bench-trend: bench-smoke
	$(PYTHON) benchmarks/trend.py

# the tier-1 suite under the shadow race checker: every parallel wave is
# replayed serially with owning-schedule attribution; byte-identity means
# this must pass exactly like the plain suite (docs/PARALLELISM.md)
race-check:
	REPRO_RACE_CHECK=1 REPRO_EXECUTOR=thread REPRO_WORKERS=4 \
		$(PYTHON) -m pytest -x -q
	$(PYTHON) -m repro lint --builtin --no-plan --dynamic

selflint:
	$(PYTHON) -m repro lint --builtin --no-plan
	$(PYTHON) -m repro lint examples/*.py --no-plan

# ruff is optional in the dev container; the committed config in
# pyproject.toml is authoritative wherever it IS available (CI).
ruff:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi
