PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test lint selflint ruff chaos bench-smoke

check: test selflint chaos ruff

test:
	$(PYTHON) -m pytest -x -q

# end-to-end fault-tolerance suite: full BT pipeline fault-free vs under
# a seeded fault schedule vs killed-and-resumed; asserts byte-identical
# output (see docs/FAULT_TOLERANCE.md)
chaos:
	$(PYTHON) -m repro chaos

# fast machine-readable benchmark: events/sec + peak heap per builtin
# BT query, a memory-scaling series, per-stage wall times of the
# combined TiMR job, and the serial-vs-parallel speedup table, written
# to BENCH_pr5.json (CI uploads it as a non-gating artifact)
bench-smoke:
	$(PYTHON) benchmarks/bench_smoke.py --out BENCH_pr5.json

selflint:
	$(PYTHON) -m repro lint --builtin --no-plan
	$(PYTHON) -m repro lint examples/*.py --no-plan

# ruff is optional in the dev container; the committed config in
# pyproject.toml is authoritative wherever it IS available (CI).
ruff:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	elif command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi
