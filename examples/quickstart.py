#!/usr/bin/env python
"""Quickstart: RunningClickCount (Example 1 of the paper).

A data analyst wants the number of clicks per ad over a 6-hour sliding
window, across a multi-day log. The temporal query is four lines; the
*same* query runs on the single-node DSMS engine and, unmodified, at
scale on the map-reduce cluster through TiMR — with identical results.

Run:  python examples/quickstart.py
"""

from repro import Query, hours
from repro.bt.schema import CLICK
from repro.data import GeneratorConfig, generate
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import normalize, run_query
from repro.temporal.event import rows_to_events
from repro.timr import TiMR


def lint_queries():
    """Plans this example runs, for ``repro lint examples/quickstart.py``."""
    return {"running-click-count": _running_click_count()}


def _running_click_count():
    return (
        Query.source("logs", ("Time", "StreamId", "AdId"))
        .where(lambda e: e["StreamId"] == CLICK)
        .group_apply("AdId", lambda g: g.window(hours(6)).count(into="ClickCount"))
    )


def main():
    # 1. a synthetic week of advertising logs (unified schema of Fig. 9)
    dataset = generate(GeneratorConfig(num_users=300, duration_days=3, seed=7))
    print(f"generated {len(dataset.rows):,} log rows")

    # 2. the temporal query — declarative, scale-out-agnostic
    running_click_count = _running_click_count()
    # (the unified schema calls the ad column KwAdId; rename for the query)
    rows = [
        {"Time": r["Time"], "StreamId": r["StreamId"], "AdId": r["KwAdId"]}
        for r in dataset.rows
    ]

    # 3a. run it on the single-node engine (this is the real-time path)
    local = run_query(running_click_count, {"logs": rows})
    print(f"single-node engine: {len(local):,} result intervals")
    print("sample output (ad, interval, count):")
    for e in local[:5]:
        print(f"  {e.payload['AdId']:>10}  [{e.le:>6}, {e.re:>6})  {e.payload['ClickCount']}")

    # 3b. run the SAME query through TiMR on a simulated 8-machine cluster
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=8))
    result = TiMR(cluster).run(running_click_count, num_partitions=8)
    print("\nTiMR fragments:")
    for frag in result.fragments:
        print(f"  {frag.describe()}")
    scaled = rows_to_events(result.output_rows())

    # 4. the temporal algebra guarantees identical results
    identical = normalize(local) == normalize(scaled)
    print(f"\nsingle-node output == cluster output: {identical}")
    sim = result.report.simulated_seconds(cluster.cost_model)
    print(f"simulated cluster wall time: {sim:.2f}s "
          f"(reduce work {result.report.reduce_cpu_seconds():.2f}s across partitions)")
    if not identical:
        raise SystemExit("outputs diverged — this is a bug")


if __name__ == "__main__":
    main()
