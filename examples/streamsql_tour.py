#!/usr/bin/env python
"""A tour of the extension features: StreamSQL, streaming pushes,
data-driven ad classes, stemming, and demographic prediction.

Run:  python examples/streamsql_tour.py
"""

from repro.bt.ad_classes import centered_click_vectors, derive_ad_classes
from repro.bt.demographics import DemographicPredictor
from repro.bt.stemming import PorterStemmer
from repro.data import GeneratorConfig, generate
from repro.temporal import StreamingEngine, parse_sql, run_sql


SQL = """
    SELECT COUNT(*) AS Clicks
    FROM logs
    WHERE StreamId = 1
    GROUP APPLY KwAdId
    WINDOW 6 HOURS
"""


def lint_queries():
    """Plans this example runs, for ``repro lint examples/streamsql_tour.py``."""
    return {"click-count-sql": parse_sql(SQL)}


def main():
    dataset = generate(GeneratorConfig(num_users=700, duration_days=4, seed=31))
    print(f"generated {len(dataset.rows):,} rows")

    # --- StreamSQL: the textual front-end --------------------------------
    sql = SQL
    print("\nStreamSQL:", " ".join(sql.split()))
    events = run_sql(sql, {"logs": dataset.rows})
    peak = max(events, key=lambda e: e.payload["Clicks"])
    print(f"  {len(events):,} result intervals; busiest: "
          f"{peak.payload['KwAdId']} with {peak.payload['Clicks']} clicks "
          f"in one 6h window")

    # --- the same SQL text over a live feed --------------------------------
    stream = StreamingEngine(parse_sql(sql))
    live = 0
    for row in dataset.rows:
        live += len(stream.push("logs", row))
    tail = len(stream.flush())
    print(f"  streamed: {live:,} results live + {tail} at end-of-feed")

    # --- data-driven ad classes (Section IV-A) ------------------------------
    vectors = centered_click_vectors(dataset.rows, positive_only=True)
    assignment = derive_ad_classes(vectors, similarity_threshold=0.3)
    print(f"\nderived {assignment.num_classes} ad classes from click similarity")
    print("(planted structure: teen/adult/senior audiences share interests):")
    for label, members in sorted(assignment.members.items()):
        if len(members) > 1:
            print(f"  {label}: {members}")

    # --- Porter stemming (Section VII) ---------------------------------------
    stemmer = PorterStemmer()
    pairs = [("laptops", "laptop"), ("gaming", "game"), ("relational", "relate")]
    print("\nPorter stems:")
    for a, b in pairs:
        print(f"  {a} -> {stemmer.stem(a)}   {b} -> {stemmer.stem(b)}")

    # --- demographic prediction (related work [19]) ----------------------------
    labels = dataset.truth.demographics
    train, test = dataset.split_by_time(0.5)
    predictor = DemographicPredictor()
    model = predictor.fit(train, labels)
    evaluation = predictor.evaluate(model, test, labels)
    print(
        f"\ndemographic prediction from browsing behavior: "
        f"accuracy {evaluation.accuracy:.2f} "
        f"(majority baseline {evaluation.majority_baseline:.2f})"
    )


if __name__ == "__main__":
    main()
