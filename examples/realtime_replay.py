#!/usr/bin/env python
"""Real-time readiness: the same queries offline and over a live feed.

The paper's closing-the-M3-loop argument (Section III-C.1): a temporal
query computes on *application time* only, so its results are identical
whether it processes an offline file through TiMR or a live stream on a
DSMS. This example demonstrates both directions:

1. BotElim runs over the full offline log via TiMR — and over the same
   events replayed as an incremental feed in chronological chunks (as a
   deployed DSMS would receive them). The outputs match exactly.
2. The model-generation + scoring queries run as a continuous pipeline:
   a hopping-window UDO re-learns the LR model every 12 hours and every
   incoming profile is scored against the model currently lodged in the
   join synopsis.

Run:  python examples/realtime_replay.py
"""

from repro.bt import (
    BTConfig,
    bot_elimination_query,
    build_examples,
    example_events,
    model_generation_query,
    scoring_query,
)
from repro.data import GeneratorConfig, generate
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import Query, normalize, run_query
from repro.temporal.event import rows_to_events
from repro.temporal.time import days, hours
from repro.timr import TiMR


def lint_queries():
    """Plans this example runs, for ``repro lint examples/realtime_replay.py``."""
    from repro.bt.queries import UNIFIED_COLUMNS

    cfg = BTConfig()
    examples = Query.source("examples", ("UserId", "AdId", "y", "Features"))
    model_cfg = BTConfig(model_window=days(2), model_hop=hours(12))
    return {
        "bot-elimination": bot_elimination_query(
            Query.source("logs", UNIFIED_COLUMNS), cfg
        ),
        "model-generation": model_generation_query(examples, model_cfg),
        "scoring": scoring_query(
            examples, model_generation_query(examples, model_cfg)
        ),
    }


def main():
    dataset = generate(GeneratorConfig(num_users=300, duration_days=3, seed=5))
    cfg = BTConfig()
    query = bot_elimination_query(Query.source("logs"), cfg)

    # --- offline: through TiMR on the simulated cluster -----------------
    fs = DistributedFileSystem()
    fs.write("logs", dataset.rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=8))
    offline = rows_to_events(TiMR(cluster).run(query, num_partitions=8).output_rows())
    print(f"offline (TiMR, 8 simulated machines): {len(offline):,} clean events")

    # --- "live": push the log event by event through the streaming engine
    from repro.temporal import StreamingEngine

    stream = StreamingEngine(query)
    live = []
    for row in dataset.rows:  # rows arrive in timestamp order, as a feed would
        live.extend(stream.push("logs", row))
    emitted_live = len(live)
    live.extend(stream.flush())
    print(
        f"live replay (streaming engine): {len(live):,} clean events, "
        f"{emitted_live:,} of them emitted while the feed was flowing"
    )

    identical = normalize(offline) == normalize(live)
    print(f"offline == live: {identical}")
    if not identical:
        raise SystemExit("determinism violated — this is a bug")

    # --- continuous model generation + scoring ---------------------------
    print("\ncontinuous model rebuild + scoring:")
    clean_rows = [
        {"Time": e.le, **{k: v for k, v in e.payload.items()}} for e in offline
    ]
    examples = build_examples(clean_rows, cfg)
    laptop = [ex for ex in examples if ex.ad == "laptop"]
    stream = example_events(laptop)
    model_cfg = BTConfig(model_window=days(2), model_hop=hours(12))
    models = model_generation_query(Query.source("examples"), model_cfg)
    scored = scoring_query(Query.source("examples"), models)
    out = run_query(scored, {"examples": stream})
    print(f"  {len(laptop)} laptop examples -> {len(out)} scored "
          f"(those arriving before the first 12h rebuild are unscored)")
    rebuilds = {e.le for e in run_query(models, {'examples': stream})}
    print(f"  model rebuilt at {len(rebuilds)} hop boundaries")
    if out:
        avg_click = sum(
            e.payload["Prediction"] for e in out if e.payload["y"] == 1
        ) / max(1, sum(1 for e in out if e.payload["y"] == 1))
        avg_nonclick = sum(
            e.payload["Prediction"] for e in out if e.payload["y"] == 0
        ) / max(1, sum(1 for e in out if e.payload["y"] == 0))
        print(f"  mean prediction on clicks:     {avg_click:.3f}")
        print(f"  mean prediction on non-clicks: {avg_nonclick:.3f}")


if __name__ == "__main__":
    main()
