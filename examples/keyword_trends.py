#!/usr/bin/env python
"""Keyword trends (Example 2 of the paper).

A new TV series ("icarly") airs mid-week and searches for it spike;
those searches are strongly correlated with clicks on a deodorant ad.
Because the BT stack is built from temporal queries, the correlation is
detected *as data flows* — this example tracks the z-score of the trend
keyword day by day and shows it emerging during the spike, which is
exactly the "immediately start delivering deodorant ads to such users"
opportunity the paper motivates.

Run:  python examples/keyword_trends.py
"""

from repro.bt import BTConfig, KEZSelector, build_examples
from repro.data import GeneratorConfig, generate
from repro.temporal.time import days


def lint_queries():
    """Plans behind ``build_examples``, for ``repro lint`` over this file."""
    from repro.bt.queries import (
        UNIFIED_COLUMNS,
        feature_selection_query,
        training_data_query,
    )
    from repro.temporal import Query

    cfg = BTConfig(min_support=3)
    source = Query.source("logs", UNIFIED_COLUMNS)
    return {
        "training-data": training_data_query(source, cfg),
        "feature-selection": feature_selection_query(source, cfg, days(7)),
    }


def main():
    cfg = GeneratorConfig(num_users=900, duration_days=7, seed=13)
    dataset = generate(cfg)
    print(f"generated {len(dataset.rows):,} rows; trend keyword "
          f"{cfg.trend_keyword!r} spikes on days "
          f"{cfg.trend_start_day:g}-{cfg.trend_start_day + cfg.trend_duration_days:g}")

    bt = BTConfig(min_support=3)
    bots = dataset.truth.bots
    clean = [r for r in dataset.rows if r["UserId"] not in bots]

    print(f"\n{'day':>4}  {'searches':>9}  {'z(icarly, deodorant)':>22}")
    for day in range(1, int(cfg.duration_days) + 1):
        horizon = days(day)
        prefix = [r for r in clean if r["Time"] < horizon]
        searches = sum(
            1
            for r in prefix
            if r["StreamId"] == 2 and r["KwAdId"] == cfg.trend_keyword
        )
        examples = build_examples(prefix, bt)
        selector = KEZSelector(z_threshold=0.0, min_support=bt.min_support)
        result = selector.fit(examples)
        z = result.scores.get("deodorant", {}).get(cfg.trend_keyword)
        z_str = f"{z:+.2f}" if z is not None else "(insufficient support)"
        print(f"{day:>4}  {searches:>9}  {z_str:>22}")

    print(
        "\nThe z-score is flat/undetectable before the spike and jumps as the\n"
        "trend lands — a static concept hierarchy (F-Ex) can never see this."
    )


if __name__ == "__main__":
    main()
