#!/usr/bin/env python
"""End-to-end Behavioral Targeting (Section IV of the paper).

Generates a synthetic week of advertising logs, then runs the full BT
architecture of Figure 10: bot elimination, training-data generation
(6-hour user behavior profiles), z-test keyword elimination (KE-z),
per-ad logistic-regression models, and CTR-lift evaluation on the held
out half — and compares KE-z against the F-Ex and KE-pop baselines.

Run:  python examples/behavioral_targeting.py
"""

from repro.bt import (
    BTPipeline,
    FExSelector,
    KEPopSelector,
    KEZSelector,
    lift_at_coverage,
    top_keywords,
)
from repro.data import GeneratorConfig, generate


def lint_queries():
    """Plans the BT pipeline executes, for ``repro lint`` over this file."""
    from repro.bt.queries import (
        UNIFIED_COLUMNS,
        bot_elimination_query,
        training_data_query,
    )
    from repro.bt.schema import BTConfig
    from repro.temporal import Query

    cfg = BTConfig()
    source = Query.source("logs", UNIFIED_COLUMNS)
    return {
        "bot-elimination": bot_elimination_query(source, cfg),
        "training-data": training_data_query(source, cfg),
    }


def main():
    dataset = generate(GeneratorConfig(num_users=800, duration_days=5, seed=21))
    print(f"generated {len(dataset.rows):,} rows "
          f"({len(dataset.truth.bots)} bot users planted)")

    # --- the paper's KE-z pipeline -------------------------------------
    pipeline = BTPipeline(selector=KEZSelector(z_threshold=1.28))
    result = pipeline.run(dataset.rows)

    print(f"\nbot elimination: {result.rows_in:,} -> "
          f"{result.rows_after_bot_elimination:,} rows")
    print(f"training examples: {result.train_examples:,}  "
          f"test examples: {result.test_examples:,}")

    print("\ntop keywords per ad class (z-scores, Figures 17-19 style):")
    for ad in ("deodorant", "laptop", "cellphone"):
        pos, neg = top_keywords(result.selector, ad, n=5)
        pos_s = ", ".join(f"{k}({z:.1f})" for k, z in pos)
        neg_s = ", ".join(f"{k}({z:.1f})" for k, z in neg)
        print(f"  {ad:>10}  +[{pos_s}]")
        print(f"  {'':>10}  -[{neg_s}]")

    print("\nper-ad CTR lift at 10% coverage (KE-1.28):")
    for ad, ev in sorted(result.evaluations.items()):
        lift = lift_at_coverage(ev.curve, 0.1)
        print(f"  {ad:>10}  dims={ev.dimensions:<4} test CTR={ev.test_ctr:.3f} "
              f"lift@10%={lift:+.3f}")

    # --- baselines (Figures 22-23 comparison) ---------------------------
    print("\ncomparing reduction schemes (mean lift@10% over ad classes):")
    for selector in (
        KEZSelector(z_threshold=1.28),
        KEZSelector(z_threshold=2.56),
        FExSelector(),
        KEPopSelector(top_n=50),
    ):
        res = BTPipeline(selector=selector).run(dataset.rows)
        lifts = [lift_at_coverage(ev.curve, 0.1) for ev in res.evaluations.values()]
        mean = sum(lifts) / len(lifts) if lifts else 0.0
        print(f"  {selector.name:>10}: {mean:+.4f}")


if __name__ == "__main__":
    main()
