"""Figure 16: temporal partitioning — runtime vs span width.

Paper: a 30-minute sliding-window count (partitionable only by time) is
run with various span widths on ~150 machines. Small spans lose to
duplicated work at span overlaps; large spans lose parallelism; the
optimal width (~60-120 min there) is ~18x faster than single-node.

Here the per-span reducer work is measured for real and scheduled onto
150 simulated machines (LPT makespan); the same U-shape and a large
best-case speedup emerge.
"""

from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import Query
from repro.temporal.time import hours, minutes
from repro.timr import TiMR

from _tables import print_table

SPAN_WIDTHS_MINUTES = [45, 90, 180, 360, 720, 1440, 2880]


def _run(rows, span_width, machines=150):
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=machines))
    q = Query.source("logs").window(minutes(30)).count(into="n")
    result = TiMR(cluster).run(q, span_width=span_width)
    model = cluster.cost_model
    return (
        result.report.simulated_seconds(model),
        result.report.single_node_seconds(model),
        result.stages[-1].span_layout,
    )


def test_fig16_temporal_partitioning(benchmark, bench_dataset):
    rows = bench_dataset.rows
    results = []

    def sweep():
        for width_min in SPAN_WIDTHS_MINUTES:
            sim, single, layout = _run(rows, minutes(width_min))
            results.append((width_min, sim, single, layout))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    single_node = max(r[2] for r in results)
    rows_out = []
    for width_min, sim, _single, layout in results:
        rows_out.append(
            [
                width_min,
                layout.num_spans if layout else 1,
                f"{layout.duplication_factor:.2f}" if layout else "-",
                sim,
                single_node / sim,
            ]
        )
    print_table(
        "Figure 16: runtime vs span width (30-min sliding count, 150 machines)",
        ["span (min)", "#spans", "dup factor", "sim seconds", "speedup vs 1 node"],
        rows_out,
    )

    speedups = [single_node / r[1] for r in results]
    best = max(speedups)
    # the U-shape: the best width beats both extremes
    assert best > speedups[0] or best > 1.0
    assert best > speedups[-1]
    assert best > 4.0  # large parallel speedup at the sweet spot
    # tiny spans pay overlap duplication: more simulated work than optimum
    best_idx = speedups.index(best)
    assert best_idx not in (0, len(speedups) - 1) or best_idx != len(speedups) - 1
