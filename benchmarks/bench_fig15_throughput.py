"""Figure 15: per-machine DSMS event throughput for each BT sub-query.

Paper: per-machine event rates of the embedded StreamInsight instance
for each BT sub-query (BotElim, GenTrainData, TotalCount, PerKWCount,
CalcScore); all sub-queries are partitionable, so cluster throughput
scales with machines. Here we measure events/second of the single-node
engine per sub-query — the per-machine figure — and print the table.
"""

from repro.bt import (
    BTConfig,
    bot_elimination_query,
    calc_score_query,
    labeled_activity_query,
    per_keyword_count_query,
    total_count_query,
    training_data_query,
)
from repro.temporal import Engine, Query
from repro.temporal.time import days

from _tables import print_table


def _throughput(query, rows):
    engine = Engine()
    engine.run(query, {"logs": rows})
    return engine.last_stats.events_per_second


def test_fig15_throughput(benchmark, bench_dataset, clean_rows):
    cfg = BTConfig()
    src = Query.source("logs")
    horizon = days(bench_dataset.config.duration_days) + days(1)

    activity = labeled_activity_query(src, cfg)
    train = training_data_query(src, cfg)
    subqueries = [
        ("BotElim", bot_elimination_query(src, cfg), bench_dataset.rows),
        ("GenTrainData", train, clean_rows),
        ("TotalCount", total_count_query(activity, cfg, horizon), clean_rows),
        ("PerKWCount", per_keyword_count_query(train, cfg, horizon), clean_rows),
        (
            "CalcScore",
            calc_score_query(
                per_keyword_count_query(train, cfg, horizon),
                total_count_query(activity, cfg, horizon),
                cfg,
            ),
            clean_rows,
        ),
    ]

    results = {}

    def run_all():
        for name, query, rows in subqueries:
            results[name] = _throughput(query, rows)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        "Figure 15: per-machine event throughput",
        ["sub-query", "events/sec"],
        [[name, f"{rate:,.0f}"] for name, rate in results.items()],
    )

    assert all(rate > 1000 for rate in results.values())
