"""Figure 14: development effort and end-to-end processing time.

Paper: the BT solution is 20 temporal queries vs ~360 lines of custom
reducer code; running through TiMR costs <10% over the hand-optimized
reducers (4.07 h vs 3.73 h on the 1-week production log).

Here: we count the actual temporal queries and the actual effective
lines of the hand-written baselines, and time the shared BT core stages
(bot elimination + training-data generation) both ways on the same
cluster. The custom path is Python-vs-Python, so the overhead ratio —
not the absolute hours — is the comparable quantity. The bot statistic
of Section IV-B.1 (0.5% of users producing ~13% of clicks+searches) is
printed alongside.
"""

import time

from repro.bt import BTConfig, bot_elimination_query, query_count, training_data_query
from repro.bt.baselines import (
    custom_bot_elimination,
    custom_keyword_scores,
    custom_training_rows,
    lines_of_code,
)
from repro.data import CLICK, KEYWORD
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import Query
from repro.timr import TiMR

from _tables import print_table


def _run_timr(rows):
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=150))
    timr = TiMR(cluster)
    cfg = BTConfig()
    t0 = time.perf_counter()
    clean = timr.run(
        bot_elimination_query(Query.source("logs"), cfg),
        job_name="botelim",
        num_partitions=32,
    )
    timr.cluster.fs.write_partitioned("clean", clean.output.partitions)
    timr.run(
        training_data_query(Query.source("clean"), cfg),
        job_name="gtd",
        num_partitions=32,
    )
    return time.perf_counter() - t0


def _run_custom(rows):
    cfg = BTConfig()
    t0 = time.perf_counter()
    clean = custom_bot_elimination(rows, cfg)
    custom_training_rows(clean, cfg)
    return time.perf_counter() - t0


def test_fig14_effort_and_runtime(benchmark, bench_dataset):
    rows = bench_dataset.rows

    custom_seconds = _run_custom(rows)
    timr_seconds = benchmark.pedantic(lambda: _run_timr(rows), rounds=1, iterations=1)

    loc_custom = lines_of_code(
        custom_bot_elimination, custom_training_rows, custom_keyword_scores
    )
    print_table(
        "Figure 14 (left): development effort",
        ["implementation", "unit", "amount"],
        [
            ["TiMR (temporal queries)", "queries", query_count()],
            ["Custom reducers", "lines of code", loc_custom],
        ],
    )
    print_table(
        "Figure 14 (right): BT core processing time",
        ["implementation", "seconds", "relative"],
        [
            ["Custom reducers", custom_seconds, 1.0],
            ["TiMR", timr_seconds, timr_seconds / custom_seconds],
        ],
    )

    bots = bench_dataset.truth.bots
    bot_events = total_events = 0
    for r in rows:
        if r["StreamId"] in (CLICK, KEYWORD):
            total_events += 1
            bot_events += r["UserId"] in bots
    print_table(
        "Section IV-B.1: bot statistics",
        ["metric", "value"],
        [
            ["bot users", f"{len(bots)} ({100 * len(bots) / bench_dataset.config.num_users:.2f}%)"],
            ["share of clicks+searches", f"{100 * bot_events / total_events:.1f}%"],
        ],
    )

    # the paper's qualitative claims, as assertions
    assert query_count() <= loc_custom / 3  # queries are far more compact
    assert timr_seconds < 20 * custom_seconds  # same order of magnitude
