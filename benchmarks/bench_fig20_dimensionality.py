"""Figure 20: dimensionality reduction — keywords kept vs z threshold.

Paper: requiring support alone (z=0) already reduces the ~50M raw
keywords dramatically; raising the z threshold cuts up to another order
of magnitude. F-Ex is flat around ~2000 (the static hierarchy size).
An extra ablation prints the sensitivity to the support threshold.
"""

from repro.bt import FExSelector, KEZSelector
from repro.data.vocab import background_keyword

from _tables import print_table

Z_THRESHOLDS = [0.0, 1.28, 1.96, 2.56, 3.29]


def _mean_dims(result):
    dims = [len(v) for v in result.retained.values()]
    return sum(dims) / len(dims) if dims else 0


def test_fig20_dimensionality(benchmark, train_examples):
    raw_keywords = len({kw for ex in train_examples for kw in ex.features})

    results = {}

    def sweep():
        for z in Z_THRESHOLDS:
            results[z] = KEZSelector(z_threshold=z).fit(train_examples)
        results["F-Ex"] = FExSelector().fit(train_examples)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [["raw keywords", raw_keywords, ""]]
    for z in Z_THRESHOLDS:
        rows.append([f"KE-{z:g}", f"{_mean_dims(results[z]):.1f}", "per ad (mean)"])
    fex_dims = _mean_dims(results["F-Ex"])
    rows.append(["F-Ex", f"{fex_dims:.0f}", "static hierarchy"])
    print_table(
        "Figure 20: dimensions retained vs reduction scheme",
        ["scheme", "dimensions", "note"],
        rows,
    )

    # support ablation (not in the paper's figure; sensitivity check)
    support_rows = []
    for support in (1, 3, 5, 10, 20):
        r = KEZSelector(z_threshold=1.96, min_support=support).fit(train_examples)
        support_rows.append([support, f"{_mean_dims(r):.1f}"])
    print_table(
        "Ablation: retained keywords vs click-support threshold (z=1.96)",
        ["min support", "dimensions per ad"],
        support_rows,
    )

    # paper's shape: support alone slashes dimensionality ...
    assert _mean_dims(results[0.0]) < raw_keywords / 10
    # ... higher thresholds reduce monotonically, up to ~an order of magnitude
    dims = [_mean_dims(results[z]) for z in Z_THRESHOLDS]
    assert all(a >= b for a, b in zip(dims, dims[1:]))
    assert dims[-1] <= dims[0] / 2
    # ... and the retained sets are small relative to F-Ex's fixed ~2000-cap space
    assert _mean_dims(results[1.96]) < fex_dims
