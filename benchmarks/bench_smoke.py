"""Smoke benchmark: machine-readable throughput + stage timings for CI.

Unlike the figure benchmarks (pytest-benchmark suites sized for
EXPERIMENTS.md), this is a fast standalone script — ``make bench-smoke``
— that emits one JSON artifact (default
``profile_out/BENCH_current.json``) CI uploads on every push. Committed
reference artifacts live under ``benchmarks/baselines/`` (one per PR
that re-baselined); generated artifacts live under the git-ignored
``profile_out/`` directory. The artifact:

* ``queries`` — events/sec of every built-in BT query that runs over
  the unified log, measured on the single-node engine (EngineStats),
  plus tracemalloc peak heap bytes for the same run (measured in a
  separate pass: tracing slows execution, so it never pollutes the
  throughput numbers).
* ``memory_scaling`` — peak heap of the largest builtin query at
  several input sizes, with a ``sublinear`` verdict: the incremental
  runtime holds only active-window state, so peak memory must grow
  strictly slower than the input.
* ``stages`` — per-stage wall seconds and row counts of the combined
  BT pipeline (bot elimination + KE-z feature selection) through TiMR,
  taken from the telemetry layer's ``cluster.stage`` spans.
* ``parallel`` — the serial-vs-parallel speedup table: events/sec of
  every logs-only builtin BT query under the serial executor and under
  ``--workers`` parallel workers (processes when ``fork`` exists,
  threads otherwise). Parallel output is byte-identical by
  construction (see ``docs/PARALLELISM.md``); this table tracks the
  throughput side. On single-core runners expect ratios near (or
  below) 1.0 — the interesting number there is the absence of a large
  regression, not the speedup.
* ``columnar`` — the row-vs-columnar physical-format table: events/sec
  of every logs-only builtin BT query under the default row format and
  under ``batch_format="columnar"`` (struct-of-arrays ``EventBatch``
  chunks through the operator hot path, see ``docs/BATCH_FORMAT.md``).
  Columnar output is byte-identical by construction; this table tracks
  the throughput side. ``columnar_speedup`` > 1.0 is expected on the
  Where/Project/AlterLifetime-heavy queries where the columnar kernels
  skip per-event dispatch.

* ``scale`` — the millions-of-events scaling table (opt-in:
  ``--scale-rows 1000000``, wired as ``make bench-scale``): synthetic
  sorted logs large enough that GroupApply crosses hundreds of
  watermark waves, run serial vs thread vs process with wave batching
  (``--wave-batch``, default ``auto``). Each parallel cell records BOTH
  ``measured_speedup`` (honest wall-clock ratio — near or below 1.0 on
  single-core runners, where real concurrency is physically impossible)
  and ``speedup``, a labeled critical-path projection: subtract every
  worker lane's busy+serialize time from the parallel wall and add back
  the longest lane, i.e. the wall the same schedule would reach were
  lanes truly concurrent. ``cpu_count`` is recorded next to the model
  name so no one mistakes the projection for a measurement.

Wall times vary run to run (this is a benchmark, not a determinism
check); row/byte counts are exact under the fixed seed. The numbers are
tracking data, not gates — CI runs this step non-blocking, except the
``parallel``-section speedup gate (ratios are stable where absolute
events/sec are not).

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --out profile_out/BENCH_current.json

    # compare against a committed artifact; exits 1 when any query's
    # events/sec drops past --regression-threshold (default 0.5)
    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --out profile_out/BENCH_current.json \
        --baseline benchmarks/baselines/BENCH_pr5.json

For run-over-run tracking against the *best* known numbers (not just
one pinned baseline), feed the artifact to ``benchmarks/trend.py`` —
``make bench-trend`` — which appends to
``profile_out/BENCH_history.jsonl`` and prints a non-gating
regression/improvement report.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
import tracemalloc


def _logs_only(query) -> bool:
    """True when every source the query reads is the unified log."""
    from repro.temporal.plan import source_nodes

    return {s.name for s in source_nodes(query.to_plan())} == {"logs"}


def _peak_heap_bytes(engine, query, sources) -> int:
    """Peak tracemalloc heap of one engine run (its own pass: tracing
    roughly halves throughput, so it must never share a pass with the
    wall-clock measurement)."""
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        engine.run(query, sources)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def run_query_benchmarks(rows, repeats: int) -> dict:
    """Events/sec + peak heap per builtin BT query on the single-node
    engine."""
    from repro.analysis import builtin_query_suite
    from repro.temporal import Engine

    results = {}
    skipped = []
    engine = Engine()
    for name, query in sorted(builtin_query_suite().items()):
        if not _logs_only(query):
            skipped.append(name)  # needs example/profile sources, not raw logs
            continue
        engine.run(query, {"logs": rows})  # warmup: JIT-free but cache-warm
        best = None
        for _ in range(repeats):
            engine.run(query, {"logs": rows})
            stats = engine.last_stats
            if best is None or stats.wall_seconds < best.wall_seconds:
                best = stats
        results[name] = {
            "input_events": best.input_events,
            "output_events": best.output_events,
            "wall_seconds": round(best.wall_seconds, 6),
            "events_per_second": round(best.events_per_second, 1),
            "peak_heap_bytes": _peak_heap_bytes(engine, query, {"logs": rows}),
        }
    return {"queries": results, "skipped": skipped}


def run_parallel_benchmarks(rows, repeats: int, workers: int) -> dict:
    """Serial vs parallel events/sec per builtin BT query.

    Uses processes when ``fork`` is available (real multi-core speedup)
    and threads otherwise, mirroring ``--executor auto``. Each cell is
    the best of ``repeats`` timed runs after one warmup, so the ratio
    compares steady-state throughput, not pool spin-up.
    """
    from repro.analysis import builtin_query_suite
    from repro.runtime import RunContext, SerialExecutor, resolve_executor
    from repro.temporal import Engine

    parallel = resolve_executor("auto", max_workers=workers)
    table = {}
    for name, query in sorted(builtin_query_suite().items()):
        if not _logs_only(query):
            continue
        cells = {}
        for kind, executor in (("serial", SerialExecutor()), (parallel.kind, parallel)):
            engine = Engine(context=RunContext(executor=executor))
            engine.run(query, {"logs": rows})  # warmup
            best = None
            for _ in range(repeats):
                engine.run(query, {"logs": rows})
                stats = engine.last_stats
                if best is None or stats.wall_seconds < best.wall_seconds:
                    best = stats
            cells[kind] = {
                "wall_seconds": round(best.wall_seconds, 6),
                "events_per_second": round(best.events_per_second, 1),
            }
            if best.parallel is not None:
                cells[kind]["fanout_tasks"] = best.parallel["tasks"]
                cells[kind]["stolen_chunks"] = best.parallel["stolen_chunks"]
        cells["speedup"] = round(
            cells[parallel.kind]["events_per_second"]
            / max(cells["serial"]["events_per_second"], 1e-9),
            3,
        )
        table[name] = cells
    return {
        "parallel": {
            "workers": workers,
            "executor": parallel.kind,
            "queries": table,
        }
    }


#: Wave-heavy GroupApply shapes for the millions-of-events scale table.
#: Distinct window kinds so the table is not one operator measured four
#: times; all keyed by UserId so shard/thread fan-out is balanced.
def _scale_query_suite():
    from repro.temporal import Query
    from repro.temporal.time import days, hours, minutes

    src = Query.source("logs", ("Time", "UserId", "Clicks"))
    return {
        "daily-active-count": src.group_apply(
            ("UserId",), lambda g: g.window(days(1)).count()
        ),
        "hourly-click-sum": src.group_apply(
            ("UserId",), lambda g: g.window(hours(1)).sum("Clicks")
        ),
        "session-count": src.group_apply(
            ("UserId",), lambda g: g.session_window(minutes(30)).count()
        ),
        "hopping-click-avg": src.group_apply(
            ("UserId",), lambda g: g.hopping_window(hours(6), hours(1)).avg("Clicks")
        ),
        # the compute-dense end of the spectrum: 12 hops replicate each
        # event twelve times *inside* the worker task, so in-task compute
        # dwarfs the driver's feed/merge residual — this is the shape
        # where coarse scheduling pays most (daily-active-count is the
        # opposite pole: per-event work so cheap the driver dominates)
        "half-day-hopping-count": src.group_apply(
            ("UserId",), lambda g: g.hopping_window(hours(12), hours(1)).count()
        ),
    }


def _scale_rows(n: int, users: int) -> list:
    """Synthetic sorted log sized exactly ``n`` (generation at millions
    of rows must not dominate the bench)."""
    span = 3 * 86400
    rows = [
        {"Time": (i * 37) % span, "UserId": i % users, "Clicks": i % 3}
        for i in range(n)
    ]
    rows.sort(key=lambda r: r["Time"])
    return rows


def _critical_path_projection(wall: float, parallel: dict) -> float:
    """Projected wall were worker lanes truly concurrent.

    ``T_proj = wall - sum(lane_i) + max(lane_i)`` where a lane's time is
    its busy + serialize seconds: strip every lane out of the measured
    wall, then add the longest one back — the driver's own time and the
    critical path remain. On GIL-bound thread runs the lane sum can
    exceed the wall (lanes interleave on one core), so the projection is
    floored at the longest lane: no schedule beats its critical path.
    """
    lanes = [
        w["busy_seconds"] + w["serialize_seconds"]
        for w in (parallel or {}).get("workers", [])
    ]
    if not lanes:
        return wall
    return max(wall - sum(lanes) + max(lanes), max(lanes), 1e-9)


def run_scale_benchmarks(
    scale_rows: int, users: int, workers: int, wave_batch
) -> dict:
    """Serial vs thread vs process at millions-of-events scale.

    One timed run per cell (at this scale the input amortizes cache
    warmup, and three executors x five queries already dominate the
    bench budget). ``counters_identical`` cross-checks the deterministic
    EngineStats counters against serial — the cheap in-bench echo of the
    differential suite's byte-identity contract.
    """
    from repro.runtime import RunContext
    from repro.temporal import Engine

    rows = _scale_rows(scale_rows, users)
    table = {}
    for name, query in sorted(_scale_query_suite().items()):
        cells = {}
        serial_counters = None
        for kind in ("serial", "thread", "process"):
            engine = Engine(
                context=RunContext(
                    executor=kind,
                    max_workers=workers if kind != "serial" else None,
                    waves_per_dispatch=wave_batch if kind != "serial" else None,
                )
            )
            engine.run(query, {"logs": rows}, validate=False)
            stats = engine.last_stats
            counters = (
                stats.input_events,
                stats.output_events,
                stats.operator_events,
            )
            cell = {
                "wall_seconds": round(stats.wall_seconds, 6),
                "events_per_second": round(stats.events_per_second, 1),
            }
            if kind == "serial":
                serial_counters = counters
                serial_wall = stats.wall_seconds
            else:
                projected = _critical_path_projection(
                    stats.wall_seconds, stats.parallel
                )
                cell["measured_speedup"] = round(
                    serial_wall / max(stats.wall_seconds, 1e-9), 3
                )
                cell["projected_wall_seconds"] = round(projected, 6)
                cell["speedup"] = round(serial_wall / projected, 3)
                cell["waves"] = stats.parallel["waves"]
                cell["dispatches"] = stats.parallel["dispatches"]
                cell["counters_identical"] = counters == serial_counters
            cells[kind] = cell
        best_kind = max(
            ("thread", "process"), key=lambda k: cells[k]["speedup"]
        )
        cells["best_executor"] = best_kind
        cells["best_speedup"] = cells[best_kind]["speedup"]
        table[name] = cells
    return {
        "scale": {
            "rows": scale_rows,
            "users": users,
            "workers": workers,
            "wave_batch": str(wave_batch),
            "cpu_count": os.cpu_count(),
            "speedup_model": (
                "critical-path projection: T_proj = wall - sum(lane busy+"
                "serialize) + max(lane); 'speedup' = serial_wall / T_proj, "
                "'measured_speedup' = serial_wall / parallel_wall (the "
                "honest wall ratio; ~1.0 or below when cpu_count is 1)"
            ),
            "queries": table,
        }
    }


#: Input scale for the columnar table, independent of the smoke scale.
#: The format comparison needs realistic per-CTI batch sizes: at the
#: default smoke scale batches carry a handful of rows each, so the
#: table would measure per-batch framing overhead instead of the
#: column kernels the format exists for.
_COLUMNAR_USERS = 400
_COLUMNAR_DAYS = 4.0


def run_columnar_benchmarks(seed: int, repeats: int) -> dict:
    """Row vs columnar events/sec per logs-only builtin BT query.

    Both cells run the serial executor, so the ratio isolates the
    physical batch format: ``columnar_speedup`` is columnar events/sec
    over row events/sec, best-of-``repeats`` after one warmup each.
    Because both cells are strictly single-threaded, they are timed with
    ``time.process_time`` (CPU time): on shared CI boxes wall clock
    swings ±20% with neighbor load, which would drown the format signal,
    while CPU time measures exactly the work done. Repeats still
    alternate row/columnar so cache/GC drift hits both cells equally.
    The input is generated at ``_COLUMNAR_USERS``/``_COLUMNAR_DAYS``
    rather than the smoke scale so batches are large enough for the
    column kernels to matter. Outputs are byte-identical across formats
    by construction (``docs/BATCH_FORMAT.md``); this table tracks the
    throughput side.
    """
    from repro.analysis import builtin_query_suite
    from repro.data import GeneratorConfig, generate
    from repro.runtime import RunContext
    from repro.temporal import Engine

    rows = generate(
        GeneratorConfig(
            num_users=_COLUMNAR_USERS, duration_days=_COLUMNAR_DAYS, seed=seed
        )
    ).rows
    table = {}
    for name, query in sorted(builtin_query_suite().items()):
        if not _logs_only(query):
            continue
        engines = {}
        best = {}
        for fmt in ("row", "columnar"):
            engines[fmt] = Engine(context=RunContext(batch_format=fmt))
            engines[fmt].run(query, {"logs": rows})  # warmup
            best[fmt] = None
        for _ in range(repeats):
            for fmt in ("row", "columnar"):
                gc.collect()  # don't bill one format for the other's garbage
                start = time.process_time()
                engines[fmt].run(query, {"logs": rows})
                elapsed = time.process_time() - start
                if best[fmt] is None or elapsed < best[fmt]:
                    best[fmt] = elapsed
        cells = {
            fmt: {
                "cpu_seconds": round(best[fmt], 6),
                "events_per_second": round(len(rows) / max(best[fmt], 1e-9), 1),
            }
            for fmt in ("row", "columnar")
        }
        cells["columnar_speedup"] = round(
            cells["columnar"]["events_per_second"]
            / max(cells["row"]["events_per_second"], 1e-9),
            3,
        )
        table[name] = cells
    return {
        "columnar": {
            "users": _COLUMNAR_USERS,
            "days": _COLUMNAR_DAYS,
            "rows": len(rows),
            "queries": table,
        }
    }


def run_memory_scaling(users: int, seed: int, days_series=(0.5, 1.0, 2.0, 4.0, 8.0)) -> dict:
    """Peak heap of the heaviest builtin query across input sizes.

    The incremental runtime's working set is bounded by active-window
    state plus one batch, so doubling the stream length must grow peak
    memory by well under 2x. ``sublinear`` records that check: the
    byte-per-event ratio at the largest input must undercut the smallest
    input's ratio (a linear-memory executor keeps it constant).
    """
    from repro.analysis import builtin_query_suite
    from repro.data import GeneratorConfig, generate
    from repro.temporal import Engine

    query = builtin_query_suite()["feature-selection"]
    engine = Engine()
    points = []
    for d in days_series:
        rows = generate(
            GeneratorConfig(num_users=users, duration_days=d, seed=seed)
        ).rows
        peak = _peak_heap_bytes(engine, query, {"logs": rows})
        points.append(
            {
                "days": d,
                "input_events": len(rows),
                "peak_heap_bytes": peak,
                "bytes_per_event": round(peak / max(len(rows), 1), 1),
            }
        )
    sublinear = points[-1]["bytes_per_event"] < points[0]["bytes_per_event"]
    return {
        "memory_scaling": {
            "query": "feature-selection",
            "points": points,
            "sublinear": sublinear,
        }
    }


def run_stage_benchmarks(rows, machines: int, partitions: int) -> dict:
    """Per-stage wall times of the combined BT job, from cluster spans."""
    from repro.bt.queries import (
        UNIFIED_COLUMNS,
        bot_elimination_query,
        feature_selection_query,
    )
    from repro.bt.schema import BTConfig
    from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
    from repro.obs import Tracer
    from repro.temporal import Query
    from repro.temporal.time import days
    from repro.timr import TiMR

    cfg = BTConfig(min_support=2, z_threshold=1.0)
    clean = bot_elimination_query(Query.source("logs", UNIFIED_COLUMNS), cfg)
    query = feature_selection_query(clean, cfg, days(3))

    tracer = Tracer()
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(
        fs=fs, cost_model=CostModel(num_machines=machines), tracer=tracer
    )
    result = TiMR(cluster).run(query, num_partitions=partitions)

    stages = []
    for span in tracer.finished():
        if span.name != "cluster.stage":
            continue
        stages.append(
            {
                "stage": span.attrs["stage"],
                "wall_seconds": round(span.wall_seconds, 6),
                "rows_in": span.attrs["rows_in"],
                "rows_out": span.attrs["rows_out"],
                "shuffle_bytes": span.attrs["shuffle_bytes"],
                "skew_ratio": span.attrs["skew_ratio"],
            }
        )
    return {
        "stages": stages,
        "output_rows": result.output.num_rows,
        "simulated_seconds": round(
            result.report.simulated_seconds(cluster.cost_model), 4
        ),
    }


#: Baseline-gated sections and the metric each one compares. ``queries``
#: compares absolute events/sec (noisy on shared runners — pair it with
#: a loose threshold); ``parallel`` and ``scale`` compare speedup RATIOS,
#: which divide the runner's speed out and are stable enough to gate CI.
_GATED_METRICS = {
    "queries": ("events_per_second", lambda doc: doc.get("queries", {})),
    "parallel": (
        "speedup",
        lambda doc: (doc.get("parallel") or {}).get("queries", {}),
    ),
    "scale": (
        "best_speedup",
        lambda doc: (doc.get("scale") or {}).get("queries", {}),
    ),
}


def compare_to_baseline(
    doc: dict, baseline: dict, threshold: float, sections=("queries",)
) -> list:
    """Per-query regressions vs a baseline artifact, per gated section.

    Returns ``[(section, query, new, old, ratio), ...]`` for every query
    whose section metric fell below ``(1 - threshold)`` of the baseline.
    Queries (or whole sections) present in only one document are
    reported but never fail the comparison — suite membership and
    artifact shape change across PRs.
    """
    regressions = []
    for section in sections:
        metric, pick = _GATED_METRICS[section]
        new_table, old_table = pick(doc), pick(baseline)
        if not new_table or not old_table:
            if old_table and not new_table:
                print(f"baseline: section {section} not measured this run, skipping")
            continue
        for name, cell in sorted(new_table.items()):
            old = old_table.get(name)
            if old is None:
                print(
                    f"baseline[{section}]: {name} not in baseline (new query), skipping"
                )
                continue
            old_value = old.get(metric, 0.0) or 0.0
            new_value = cell.get(metric, 0.0) or 0.0
            if old_value <= 0:
                continue
            ratio = new_value / old_value
            if ratio < 1.0 - threshold:
                regressions.append((section, name, new_value, old_value, ratio))
        for name in sorted(set(old_table) - set(new_table)):
            print(f"baseline[{section}]: {name} present in baseline only (dropped)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=os.path.join("profile_out", "BENCH_current.json")
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="compare per-query events/sec against a previous artifact "
        "and exit 1 on a regression past --regression-threshold",
    )
    parser.add_argument(
        "--regression-threshold",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="allowed fractional throughput drop vs the baseline before "
        "the comparison fails (default 0.5: flag only >50%% drops — "
        "shared CI runners are noisy)",
    )
    parser.add_argument(
        "--gate",
        default="queries",
        metavar="SECTIONS",
        help="comma-separated artifact sections the --baseline comparison "
        "may fail on: any of queries,parallel,scale (default: queries). "
        "parallel/scale compare speedup ratios, stable enough to gate CI",
    )
    parser.add_argument(
        "--scale-rows",
        type=int,
        default=0,
        metavar="N",
        help="also run the millions-of-events scale table over N synthetic "
        "rows (default 0: skipped — it multiplies the bench budget; "
        "`make bench-scale` runs it at 1,000,000)",
    )
    parser.add_argument("--scale-users", type=int, default=512, metavar="N")
    parser.add_argument(
        "--wave-batch",
        default="auto",
        metavar="N|auto|max",
        help="waves_per_dispatch for the scale table's parallel cells "
        "(default auto: the adaptive controller)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--users", type=int, default=150)
    parser.add_argument("--days", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--partitions", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.data import GeneratorConfig, generate

    dataset = generate(
        GeneratorConfig(
            num_users=args.users, duration_days=args.days, seed=args.seed
        )
    )
    rows = dataset.rows
    print(
        f"bench-smoke: {len(rows):,} rows "
        f"({args.users} users, {args.days:g} days, seed {args.seed})"
    )

    doc = {
        "benchmark": "bench_smoke",
        "config": {
            "users": args.users,
            "days": args.days,
            "seed": args.seed,
            "repeats": args.repeats,
            "machines": args.machines,
            "partitions": args.partitions,
            "workers": args.workers,
            "rows": len(rows),
        },
    }
    doc.update(run_query_benchmarks(rows, args.repeats))
    doc.update(run_memory_scaling(args.users, args.seed))
    doc.update(run_stage_benchmarks(rows, args.machines, args.partitions))
    doc.update(run_parallel_benchmarks(rows, args.repeats, args.workers))
    doc.update(run_columnar_benchmarks(args.seed, args.repeats))
    if args.scale_rows > 0:
        print(
            f"scale: {args.scale_rows:,} synthetic rows x "
            f"{len(_scale_query_suite())} queries x 3 executors "
            "(this is the slow part)"
        )
        doc.update(
            run_scale_benchmarks(
                args.scale_rows, args.scale_users, args.workers, args.wave_batch
            )
        )

    parent = os.path.dirname(args.out)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
    slowest = max(doc["queries"].items(), key=lambda kv: kv[1]["wall_seconds"])
    print(
        f"measured {len(doc['queries'])} queries "
        f"(skipped {len(doc['skipped'])}: non-log sources), "
        f"{len(doc['stages'])} cluster stages; "
        f"slowest query: {slowest[0]} at "
        f"{slowest[1]['events_per_second']:,.0f} events/sec"
    )
    scaling = doc["memory_scaling"]
    print(
        f"memory scaling ({scaling['query']}): "
        + " -> ".join(
            f"{p['input_events']:,}ev/{p['peak_heap_bytes'] // 1024}KiB"
            for p in scaling["points"]
        )
        + f" (sublinear: {scaling['sublinear']})"
    )
    par = doc["parallel"]
    best = max(par["queries"].items(), key=lambda kv: kv[1]["speedup"])
    print(
        f"parallel ({par['executor']}, workers={par['workers']}): "
        f"best speedup {best[1]['speedup']:.2f}x on {best[0]}"
    )
    col = doc["columnar"]["queries"]
    best_col = max(col.items(), key=lambda kv: kv[1]["columnar_speedup"])
    print(
        "columnar: best speedup "
        f"{best_col[1]['columnar_speedup']:.2f}x on {best_col[0]}"
    )
    if "scale" in doc:
        scale = doc["scale"]
        over_2x = [
            name
            for name, cells in scale["queries"].items()
            if cells["best_speedup"] >= 2.0
        ]
        for name, cells in sorted(scale["queries"].items()):
            best = cells[cells["best_executor"]]
            print(
                f"scale {name}: {cells['best_executor']} projected "
                f"{cells['best_speedup']:.2f}x (measured "
                f"{best['measured_speedup']:.2f}x, {best['waves']} waves in "
                f"{best['dispatches']} dispatches)"
            )
        print(
            f"scale: {len(over_2x)}/{len(scale['queries'])} queries >= 2.0x "
            f"projected (cpu_count={scale['cpu_count']}; see speedup_model)"
        )
    print(f"wrote {args.out}")

    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as fp:
                baseline = json.load(fp)
        except (OSError, ValueError) as exc:
            print(f"baseline: cannot read {args.baseline}: {exc}")
            return 0  # a missing baseline is not a regression
        sections = tuple(
            s.strip() for s in args.gate.split(",") if s.strip()
        )
        unknown = [s for s in sections if s not in _GATED_METRICS]
        if unknown:
            print(f"--gate: unknown section(s) {unknown}; "
                  f"valid: {sorted(_GATED_METRICS)}")
            return 2
        regressions = compare_to_baseline(
            doc, baseline, args.regression_threshold, sections
        )
        compared = len(
            set(doc["queries"]) & set(baseline.get("queries", {}))
        )
        if regressions:
            for section, name, new_value, old_value, ratio in regressions:
                print(
                    f"REGRESSION[{section}]: {name} {new_value:,.2f} vs "
                    f"baseline {old_value:,.2f} ({ratio:.2f}x, threshold "
                    f"{1.0 - args.regression_threshold:.2f}x)"
                )
            return 1
        print(
            f"baseline: {compared} query(ies) within "
            f"{args.regression_threshold:.0%} of {args.baseline} "
            f"(gated sections: {', '.join(sections)})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
