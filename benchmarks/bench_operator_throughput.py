"""Engine micro-benchmarks: per-operator throughput.

Not a paper figure — a regression harness for the library itself. Each
benchmark pushes a fixed synthetic stream through one operator shape and
reports events/second (pytest-benchmark measures the run for real, with
several rounds).
"""

import random

from repro.temporal import Query, run_query

N = 30_000


def make_rows(n=N, seed=1):
    rnd = random.Random(seed)
    return [
        {
            "Time": i * 3 + rnd.randrange(3),
            "k": f"k{rnd.randrange(50)}",
            "v": rnd.randrange(1000),
            "flag": rnd.randrange(2),
        }
        for i in range(n)
    ]


ROWS = make_rows()


def _run(query):
    return run_query(query, {"s": ROWS})


def test_where_throughput(benchmark):
    q = Query.source("s").where(lambda p: p["flag"] == 1)
    out = benchmark(_run, q)
    assert len(out) > N * 0.4


def test_project_throughput(benchmark):
    q = Query.source("s").project(lambda p: {"v2": p["v"] * 2}, columns=("v2",))
    out = benchmark(_run, q)
    assert len(out) == N


def test_windowed_count_throughput(benchmark):
    q = Query.source("s").window(500).count(into="n")
    out = benchmark(_run, q)
    assert out


def test_grouped_count_throughput(benchmark):
    q = Query.source("s").group_apply("k", lambda g: g.window(2000).count(into="n"))
    out = benchmark(_run, q)
    assert out


def test_join_throughput(benchmark):
    left = Query.source("s").where(lambda p: p["flag"] == 1)
    right = Query.source("s").where(lambda p: p["flag"] == 0).window(100)
    q = left.temporal_join(right, on="k", select=lambda l, r: {"k": l["k"]})
    out = benchmark(_run, q)
    assert out


def test_session_window_throughput(benchmark):
    q = Query.source("s").group_apply(
        "k", lambda g: g.session_window(300).count(into="n")
    )
    out = benchmark(_run, q)
    assert out
