"""Shared state for the benchmark suite.

One standard dataset (seeded) is generated per session and the expensive
intermediate products — bot-cleaned rows, train/test example sets — are
computed once and shared by every figure's benchmark. Scale with
``REPRO_BENCH_USERS`` (default 1500) if you want bigger runs.
"""

import os

import pytest

from repro.bt import BTConfig, BTPipeline, KEZSelector, build_examples
from repro.data import GeneratorConfig, generate

BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "1500"))
BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "7"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def bench_dataset():
    """The standard benchmark log (about a week, ~1500 users by default)."""
    return generate(
        GeneratorConfig(num_users=BENCH_USERS, duration_days=BENCH_DAYS, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def bt_config():
    return BTConfig()


@pytest.fixture(scope="session")
def clean_rows(bench_dataset, bt_config):
    """Bot-eliminated unified rows (stage 1 output), shared by benches."""
    return BTPipeline(config=bt_config).eliminate_bots(bench_dataset.rows)


@pytest.fixture(scope="session")
def train_test_rows(bench_dataset, clean_rows):
    times = [r["Time"] for r in clean_rows]
    split = (min(times) + max(times)) // 2
    train = [r for r in clean_rows if r["Time"] < split]
    test = [r for r in clean_rows if r["Time"] >= split]
    return train, test


@pytest.fixture(scope="session")
def train_examples(train_test_rows, bt_config):
    return build_examples(train_test_rows[0], bt_config)


@pytest.fixture(scope="session")
def test_examples(train_test_rows, bt_config):
    return build_examples(train_test_rows[1], bt_config)
