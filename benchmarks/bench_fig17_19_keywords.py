"""Figures 17-19: top positive/negative z-score keywords per ad class.

Paper: snapshots of retained keywords for the deodorant, laptop, and
cellphone ad classes — icarly/celebrity/hannah positive for deodorant
with jobless/credit negative; dell/laptops positive for laptop with
vera/wang/dancing negative; blackberry/tmobile positive for cellphone.
The generator plants those exact keyword sets, so the KE-z tables must
surface them (ranks, not magnitudes, are the reproduction target).
"""

from repro.bt import KEZSelector, top_keywords
from repro.data import NEGATIVE_KEYWORDS, POSITIVE_KEYWORDS

from _tables import print_table

AD_CLASSES = ["deodorant", "laptop", "cellphone"]


def test_fig17_19_keyword_tables(benchmark, train_examples):
    selector = KEZSelector(z_threshold=1.28)
    result = benchmark.pedantic(
        lambda: selector.fit(train_examples), rounds=1, iterations=1
    )

    for figure, ad in zip((17, 18, 19), AD_CLASSES):
        pos, neg = top_keywords(result, ad, n=9)
        width = max(len(pos), len(neg))
        rows = []
        for i in range(width):
            p = f"{pos[i][0]} ({pos[i][1]:.1f})" if i < len(pos) else ""
            n = f"{neg[i][0]} ({neg[i][1]:.1f})" if i < len(neg) else ""
            rows.append([p, n])
        print_table(
            f"Figure {figure}: keywords for the {ad} ad",
            ["highly positive (z)", "highly negative (z)"],
            rows,
        )

        planted_pos = set(POSITIVE_KEYWORDS[ad])
        top_pos_names = {k for k, _ in pos}
        # the majority of the top positive keywords are the planted ones
        assert len(top_pos_names & planted_pos) >= min(4, len(pos)), (
            f"{ad}: planted positives missing from {top_pos_names}"
        )
        # every strongly-positive keyword really is planted-positive or the
        # trend keyword (no popular-but-irrelevant intruders above z=6)
        for k, z in pos:
            if z > 6:
                assert k in planted_pos, f"{ad}: unexpected strong keyword {k}"

    # negative side: planted negatives surface (their statistical power is
    # weaker than the positives' — matching the smaller |z| magnitudes the
    # paper reports on the negative columns)
    planted_neg_hits = 0
    for ad in AD_CLASSES:
        _, neg = top_keywords(result, ad, n=9)
        hits = [k for k, _ in neg if k in set(NEGATIVE_KEYWORDS[ad])]
        planted_neg_hits += len(hits)
        # no planted positive may show up on the negative side
        assert not set(k for k, _ in neg) & set(POSITIVE_KEYWORDS[ad])
    assert planted_neg_hits >= 1
