"""Bench trend harness: run-over-run throughput tracking for CI.

``make bench-compare`` pins one baseline artifact and asks "did this
run regress against *that* file?". This script answers the longer
question — "how does this run sit against the best numbers this repo
has ever recorded?" — and keeps the record:

* appends a compact summary of the run (per-query events/sec, the
  parallel and columnar speedup tables, config, git revision) to a
  JSON-lines history file (default
  ``profile_out/BENCH_history.jsonl``, outside version control like
  every generated artifact, uploaded as a CI artifact so runs
  accumulate across workflow runs when the previous artifact is
  restored);
* folds the **best-known** events/sec per query across every committed
  baseline in ``benchmarks/baselines/BENCH_*.json`` *and* every prior
  history entry;
* prints a regression/improvement report: queries below
  ``(1 - threshold)`` of best-known are regressions, queries that set
  a new best are improvements, everything else is steady.

The report is advisory: exit code is 0 regardless of findings unless
``--strict`` is passed (then regressions exit 1). Wall-clock numbers
on shared runners are noisy — the default threshold is deliberately
loose, and the point of the history file is the trend line, not any
single run.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py \
        --out profile_out/BENCH_current.json
    python benchmarks/trend.py --run profile_out/BENCH_current.json

    # CI variant: machine-readable report document
    python benchmarks/trend.py --json > profile_out/trend.json
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import subprocess
import sys
import time


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def _query_eps(doc: dict) -> dict:
    """``{query: events_per_second}`` from a bench_smoke artifact or a
    history entry (both store the same shape under ``queries``)."""
    eps = {}
    for name, cell in (doc.get("queries") or {}).items():
        value = cell.get("events_per_second") if isinstance(cell, dict) else cell
        if isinstance(value, (int, float)) and value > 0:
            eps[name] = float(value)
    return eps


def load_history(path: str) -> list:
    """All prior entries; unparseable lines are skipped, not fatal."""
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue
    return entries


def best_known(baseline_docs: list, history: list) -> dict:
    """Best events/sec per query across baselines + history, with the
    source label of where each best was recorded."""
    best = {}
    for label, doc in baseline_docs:
        for name, eps in _query_eps(doc).items():
            if name not in best or eps > best[name][0]:
                best[name] = (eps, label)
    for entry in history:
        label = f"history:{entry.get('git', '?')}"
        for name, eps in _query_eps(entry).items():
            if name not in best or eps > best[name][0]:
                best[name] = (eps, label)
    return best


def summarize(run: dict, git: str, timestamp: float) -> dict:
    """The compact history record for one bench_smoke artifact."""
    parallel = (run.get("parallel") or {}).get("queries") or {}
    columnar = (run.get("columnar") or {}).get("queries") or {}
    scale = (run.get("scale") or {}).get("queries") or {}
    return {
        "timestamp": round(timestamp, 1),
        "git": git,
        "config": run.get("config", {}),
        "queries": {
            name: {"events_per_second": eps}
            for name, eps in sorted(_query_eps(run).items())
        },
        "speedup": {
            name: cell.get("speedup")
            for name, cell in sorted(parallel.items())
            if isinstance(cell, dict) and cell.get("speedup") is not None
        },
        "columnar_speedup": {
            name: cell.get("columnar_speedup")
            for name, cell in sorted(columnar.items())
            if isinstance(cell, dict)
            and cell.get("columnar_speedup") is not None
        },
        # projected critical-path speedups from the millions-of-events
        # table (bench_smoke --scale-rows); absent on plain smoke runs
        "scale_speedup": {
            name: cell.get("best_speedup")
            for name, cell in sorted(scale.items())
            if isinstance(cell, dict) and cell.get("best_speedup") is not None
        },
    }


def compare(run: dict, best: dict, threshold: float) -> dict:
    """Classify every query of the run against best-known numbers."""
    regressions, improvements, steady, new_queries = [], [], [], []
    for name, eps in sorted(_query_eps(run).items()):
        if name not in best:
            new_queries.append({"query": name, "events_per_second": eps})
            continue
        best_eps, source = best[name]
        ratio = eps / best_eps
        row = {
            "query": name,
            "events_per_second": eps,
            "best_events_per_second": best_eps,
            "best_source": source,
            "ratio": round(ratio, 3),
        }
        if ratio < 1.0 - threshold:
            regressions.append(row)
        elif ratio > 1.0:
            improvements.append(row)
        else:
            steady.append(row)
    return {
        "regressions": regressions,
        "improvements": improvements,
        "steady": steady,
        "new_queries": new_queries,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--run",
        default=os.path.join("profile_out", "BENCH_current.json"),
        metavar="JSON",
        help="bench_smoke artifact for the run to record and compare",
    )
    parser.add_argument(
        "--history",
        default=os.path.join("profile_out", "BENCH_history.jsonl"),
        metavar="JSONL",
        help="append-only run history (created on first use, parent "
        "directory included)",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines"),
        metavar="DIR",
        help="directory of committed BENCH_*.json reference artifacts",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help="fractional drop vs best-known before a query counts as a "
        "regression (default 0.5; shared runners are noisy)",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="compare only; do not record this run into the history",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any query regressed (default: always exit 0 — "
        "the report is advisory)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full report as one JSON document on stdout",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.run, encoding="utf-8") as fp:
            run = json.load(fp)
    except (OSError, ValueError) as exc:
        print(f"trend: cannot read run artifact {args.run}: {exc}", file=sys.stderr)
        return 2

    baseline_docs = []
    for path in sorted(glob.glob(os.path.join(args.baselines, "BENCH_*.json"))):
        try:
            with open(path, encoding="utf-8") as fp:
                baseline_docs.append((os.path.basename(path), json.load(fp)))
        except (OSError, ValueError) as exc:
            print(f"trend: skipping unreadable baseline {path}: {exc}")

    history = load_history(args.history)
    best = best_known(baseline_docs, history)
    report = compare(run, best, args.threshold)
    record = summarize(run, _git_revision(), time.time())

    if not args.no_append:
        parent = os.path.dirname(args.history)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.history, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(record, sort_keys=True) + "\n")

    doc = {
        "command": "bench-trend",
        "run": args.run,
        "baselines": [label for label, _ in baseline_docs],
        "history_entries": len(history),
        "threshold": args.threshold,
        "git": record["git"],
        **report,
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"bench-trend: {len(_query_eps(run))} query(ies) vs best-known "
            f"from {len(baseline_docs)} baseline(s) + "
            f"{len(history)} history entry(ies)"
        )
        for row in report["regressions"]:
            print(
                f"  REGRESSION {row['query']}: {row['events_per_second']:,.0f} "
                f"ev/s vs best {row['best_events_per_second']:,.0f} "
                f"({row['ratio']:.2f}x, best from {row['best_source']})"
            )
        for row in report["improvements"]:
            print(
                f"  improvement {row['query']}: {row['events_per_second']:,.0f} "
                f"ev/s, new best (was {row['best_events_per_second']:,.0f} "
                f"from {row['best_source']})"
            )
        for row in report["new_queries"]:
            print(
                f"  new query {row['query']}: {row['events_per_second']:,.0f} ev/s "
                "(no prior numbers)"
            )
        print(
            f"  steady: {len(report['steady'])}; "
            f"regressions: {len(report['regressions'])}; "
            f"improvements: {len(report['improvements'])}"
            + ("" if args.no_append else f"; recorded to {args.history}")
        )
    if args.strict and report["regressions"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
