"""Design-choice ablations called out in DESIGN.md.

1. **Hash bucketing** (Section III-C.3): TiMR routes by ``hash(key) %
   #partitions`` instead of one DSMS instance per key. Sweeping the
   bucket count shows the tradeoff: too few buckets leaves machines
   idle, many buckets are harmless because the CQ's own GroupApply does
   the per-key work.
2. **Pipelined M-R** (Section VII): with MapReduce-Online-style
   pipelining, a multi-stage TiMR job costs about its slowest stage
   rather than the sum of stages — the "TiMR can transparently take
   advantage" claim, quantified on the two-stage GenTrainData plan.
"""

from repro.bt import BTConfig
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import Query
from repro.timr import TiMR

from _tables import print_table


def _bot_query(cfg):
    from repro.bt import bot_elimination_query

    return bot_elimination_query(Query.source("logs"), cfg)


def _two_stage_plan(cfg):
    src = Query.source("logs")
    keywords = src.where(lambda p: p["StreamId"] == 2)
    return (
        keywords.exchange("UserId", "KwAdId")
        .group_apply(
            ["UserId", "KwAdId"],
            lambda g: g.window(cfg.ubp_window).count(into="Count"),
        )
        .exchange("UserId")
        .group_apply("UserId", lambda g: g.max("Count", into="peak"))
    )


def _run(rows, query, num_partitions, job_name):
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=150))
    result = TiMR(cluster).run(query, job_name=job_name, num_partitions=num_partitions)
    return result, cluster.cost_model


def test_hash_bucket_sweep(benchmark, bench_dataset, bt_config):
    rows = bench_dataset.rows
    query = _bot_query(bt_config)
    results = []

    def sweep():
        for buckets in (1, 4, 16, 64, 150, 600):
            res, model = _run(rows, query, buckets, f"b{buckets}")
            results.append((buckets, res.report.simulated_seconds(model)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    baseline = dict(results)[1]
    print_table(
        "Ablation (III-C.3): hash bucket count for BotElim (150 machines)",
        ["buckets", "sim seconds", "speedup vs 1 bucket"],
        [[b, s, baseline / s] for b, s in results],
    )
    by_buckets = dict(results)
    assert by_buckets[150] < by_buckets[1]  # bucketing buys parallelism
    assert by_buckets[600] < by_buckets[4] * 2  # over-bucketing is benign


def test_machine_scalability(benchmark, bench_dataset, bt_config):
    """Figure-15 companion: 'performance scaled well with the number of
    machines'. One measured BotElim run re-scheduled onto clusters of
    different sizes (same per-partition work, different makespans)."""
    rows = bench_dataset.rows
    query = _bot_query(bt_config)

    def run():
        return _run(rows, query, 150, "scal")

    result, _ = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    base = None
    for machines in (1, 2, 4, 8, 16, 32, 64, 150):
        model = CostModel(num_machines=machines)
        seconds = result.report.simulated_seconds(model)
        if base is None:
            base = seconds
        table.append([machines, seconds, base / seconds])
    print_table(
        "Scalability: BotElim simulated runtime vs cluster size",
        ["machines", "sim seconds", "speedup"],
        table,
    )
    speedups = [r[2] for r in table]
    assert all(b >= a * 0.99 for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 5  # scales well into the tens of machines


def test_stragglers_and_speculation(benchmark, bench_dataset, bt_config):
    """Dean & Ghemawat's backup tasks, on TiMR's measured stage work:
    a few quarter-speed machines stretch the makespan; speculative
    execution claws most of it back."""
    rows = bench_dataset.rows
    query = _bot_query(bt_config)

    def run():
        return _run(rows, query, 64, "strag")

    result, _ = benchmark.pedantic(run, rounds=1, iterations=1)

    machines = 64
    speeds = [0.25 if i % 16 == 0 else 1.0 for i in range(machines)]
    healthy = CostModel(num_machines=machines)
    straggling = CostModel(num_machines=machines, machine_speeds=speeds)
    speculating = CostModel(
        num_machines=machines, machine_speeds=speeds, speculative_execution=True
    )
    t_healthy = result.report.simulated_seconds(healthy)
    t_straggling = result.report.simulated_seconds(straggling)
    t_speculating = result.report.simulated_seconds(speculating)
    print_table(
        "Ablation: stragglers and speculative execution (64 machines, 4 slow)",
        ["cluster", "sim seconds"],
        [
            ["healthy", t_healthy],
            ["4 machines at 1/4 speed", t_straggling],
            ["same + speculative execution", t_speculating],
        ],
    )
    assert t_straggling > t_healthy
    assert t_speculating <= t_straggling


def test_pipelined_mr(benchmark, bench_dataset, bt_config):
    rows = [r for r in bench_dataset.rows if r["StreamId"] == 2]
    query = _two_stage_plan(bt_config)

    def run():
        return _run(rows, query, 64, "pipe")

    result, model = benchmark.pedantic(run, rounds=1, iterations=1)

    sequential = result.report.simulated_seconds(model)
    pipelined = result.report.simulated_seconds_pipelined(model)
    print_table(
        "Ablation (VII): pipelined M-R on the two-stage GenTrainData plan",
        ["mode", "sim seconds"],
        [
            ["stage-at-a-time (vanilla M-R)", sequential],
            ["pipelined (MapReduce Online)", pipelined],
        ],
    )
    assert len(result.report.stages) >= 2
    assert pipelined < sequential
