"""Extension experiments beyond the paper's own evaluation.

1. **Stemmed KE-z** (the Section VII suggestion): Porter-stem keywords
   before keyword elimination, pooling statistics across word forms.
   Reported: dimensionality and mean CTR lift vs plain KE-z.
2. **Incremental LR** (Section IV-B.4's "plug-in" option): online SGD
   models vs periodically recomputed batch models on held-out lift.
3. **Demographic prediction** (Hu et al. [19]): accuracy of age-group
   prediction from browsing behavior vs the majority baseline.
"""

from repro.bt import KEZSelector, ModelTrainer, lift_at_coverage, lift_coverage_curve, split_by_ad
from repro.bt.demographics import DemographicPredictor
from repro.bt.incremental import IncrementalLogisticRegression
from repro.bt.stemming import StemmedSelector

from _tables import print_table


def _mean_dims(result):
    dims = [len(v) for v in result.retained.values()]
    return sum(dims) / len(dims) if dims else 0.0


def _mean_lift(selector, train_examples, test_examples, coverage=0.1):
    selector.fit(train_examples)
    train_by_ad = split_by_ad(train_examples)
    test_by_ad = split_by_ad(test_examples)
    lifts = []
    for ad in sorted(set(train_by_ad) & set(test_by_ad)):
        if sum(ex.y for ex in train_by_ad[ad]) < 10:
            continue
        model = ModelTrainer(seed=23).fit(ad, train_by_ad[ad], selector.transform)
        scores = [
            model.predict_ctr(selector.transform(ad, ex.features))
            for ex in test_by_ad[ad]
        ]
        curve = lift_coverage_curve([ex.y for ex in test_by_ad[ad]], scores)
        lifts.append(lift_at_coverage(curve, coverage))
    return sum(lifts) / len(lifts) if lifts else 0.0


def test_stemmed_keyword_elimination(benchmark, train_examples, test_examples):
    rows = []

    def run():
        for name, selector in [
            ("KE-1.96", KEZSelector(z_threshold=1.96)),
            ("stemmed KE-1.96", StemmedSelector(KEZSelector(z_threshold=1.96))),
        ]:
            lift = _mean_lift(selector, train_examples, test_examples)
            dims = _mean_dims(selector.result)
            rows.append([name, f"{dims:.1f}", f"{lift:+.4f}"])

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension (VII): Porter-stemmed keyword elimination",
        ["scheme", "dims per ad", "mean lift@10%"],
        rows,
    )
    # stemming pools word forms: never more dimensions than plain KE-z
    assert float(rows[1][1]) <= float(rows[0][1]) * 1.2


def test_incremental_vs_batch_lr(benchmark, train_examples, test_examples):
    selector = KEZSelector(z_threshold=1.28)
    selector.fit(train_examples)
    train_by_ad = split_by_ad(train_examples)
    test_by_ad = split_by_ad(test_examples)
    rows = []

    def run():
        batch_lifts, online_lifts = [], []
        for ad in sorted(set(train_by_ad) & set(test_by_ad)):
            train = train_by_ad[ad]
            test = test_by_ad[ad]
            if sum(ex.y for ex in train) < 10:
                continue
            batch = ModelTrainer(seed=23).fit(ad, train, selector.transform)
            online = IncrementalLogisticRegression(
                learning_rate=0.2, positive_weight=10.0
            )
            for ex in sorted(train, key=lambda e: e.time):
                online.observe(selector.transform(ad, ex.features), ex.y)
            y = [ex.y for ex in test]
            batch_scores = [
                batch.predict_ctr(selector.transform(ad, ex.features)) for ex in test
            ]
            online_scores = [
                online.predict(selector.transform(ad, ex.features)) for ex in test
            ]
            batch_lifts.append(
                lift_at_coverage(lift_coverage_curve(y, batch_scores), 0.1)
            )
            online_lifts.append(
                lift_at_coverage(lift_coverage_curve(y, online_scores), 0.1)
            )
        rows.append(["batch IRLS (periodic rebuild)", f"{sum(batch_lifts)/len(batch_lifts):+.4f}"])
        rows.append(["online SGD (incremental)", f"{sum(online_lifts)/len(online_lifts):+.4f}"])

    benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension (IV-B.4): incremental vs periodic model learning",
        ["learner", "mean lift@10%"],
        rows,
    )
    # the online learner must capture a usable share of the batch lift
    assert float(rows[1][1]) > 0


def test_demographic_prediction(benchmark, bench_dataset):
    labels = bench_dataset.truth.demographics
    train, test = bench_dataset.split_by_time(0.5)
    predictor = DemographicPredictor()

    def run():
        model = predictor.fit(train, labels)
        return predictor.evaluate(model, test, labels)

    evaluation = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension (related work [19]): demographic prediction",
        ["metric", "value"],
        [
            ["accuracy", f"{evaluation.accuracy:.3f}"],
            ["majority baseline", f"{evaluation.majority_baseline:.3f}"],
        ]
        + [[f"recall[{c}]", f"{r:.3f}"] for c, r in evaluation.per_class_recall.items()],
    )
    assert evaluation.accuracy > evaluation.majority_baseline
