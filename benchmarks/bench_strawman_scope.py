"""Section II-C strawman: the SCOPE self-join is intractable.

Paper: expressing RunningClickCount relationally needs a self equi-join
of the click log on AdId with a 6-hour band predicate — quadratic in the
clicks per ad and "prohibitively expensive"; the temporal plan is
(near-)linear. We execute both formulations at growing per-ad click
volumes and print the scaling table: the self-join's cost grows
quadratically while TiMR's temporal plan stays near-linear.
"""

import time

from repro.temporal import Query, run_query
from repro.temporal.time import hours

from _tables import print_table

SIZES = [500, 1000, 2000, 4000]
WINDOW = hours(6)


def _make_clicks(n, num_ads=2):
    spacing = max(1, (12 * 3600) // max(1, n // num_ads))
    rows = []
    for i in range(n):
        rows.append({"Time": (i // num_ads) * spacing, "AdId": f"ad{i % num_ads}"})
    return rows


def _scope_self_join(rows):
    """OUT1/OUT2 of Section II-C: band self-join then group-count."""
    by_ad = {}
    for r in rows:
        by_ad.setdefault(r["AdId"], []).append(r["Time"])
    pairs = 0
    counts = {}
    for ad, times in by_ad.items():
        for a in times:  # the relational engine's nested self-join
            c = 0
            for b in times:
                pairs += 1
                if a - WINDOW < b <= a:
                    c += 1
            counts[(a, ad)] = c
    return counts, pairs


def _temporal(rows):
    q = Query.source("clicks").group_apply(
        "AdId", lambda g: g.window(WINDOW).count(into="n")
    )
    return run_query(q, {"clicks": rows})


def test_strawman_scope_self_join(benchmark):
    results = []

    def timed(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return out, best

    def sweep():
        for n in SIZES:
            rows = _make_clicks(n)
            (_, pairs), scope_s = timed(lambda: _scope_self_join(rows))
            _, timr_s = timed(lambda: _temporal(rows))
            results.append((n, pairs, scope_s, timr_s))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_table(
        "Section II-C strawman: relational self-join vs temporal plan",
        ["#clicks", "join pairs", "SCOPE-style (s)", "temporal (s)", "ratio"],
        [
            [n, pairs, s, t, f"{s / t:.1f}x" if t > 0 else "-"]
            for n, pairs, s, t in results
        ],
    )

    # quadratic vs linear: pairs grow ~x4 per doubling
    assert results[-1][1] / results[0][1] > 30
    # the strawman's growth rate strictly exceeds the temporal plan's
    scope_growth = results[-1][2] / results[0][2]
    timr_growth = results[-1][3] / results[0][3]
    assert scope_growth > 2 * timr_growth
    # at the largest size the temporal plan wins outright
    assert results[-1][3] < results[-1][2]
