"""Section V-B "Fragment Optimization" (Example 3).

Paper: for GenTrainData, the naive annotation partitions UBP generation
by {UserId, Keyword} and then repartitions by {UserId} for the join —
two fragments, one mid-query shuffle. The optimizer instead partitions
once by {UserId} (valid because {UserId} ⊆ {UserId, Keyword}), a single
fragment measured 2.27x faster (1.35 h vs 3.06 h).

Here both annotated plans run on the simulated cluster; the report
compares simulated wall time (makespan + shuffle) and checks the
optimizer picks the single-fragment plan on its own.
"""

from repro.bt import BTConfig
from repro.mapreduce import Cluster, CostModel, DistributedFileSystem
from repro.temporal import Query
from repro.timr import TiMR

from _tables import print_table


def _gen_train_plan(annotate):
    """GenTrainData's join-with-UBP core with explicit annotations.

    ``annotate`` chooses 'naive' ({UserId, Keyword} then {UserId}) or
    'optimized' (single {UserId}).
    """
    cfg = BTConfig()
    src = Query.source("logs")
    keywords = src.where(lambda p: p["StreamId"] == 2)
    activities = src.where(lambda p: p["StreamId"] != 2).project(
        lambda p: {"UserId": p["UserId"], "AdId": p["KwAdId"]}
    )
    if annotate == "naive":
        kw_in = keywords.exchange("UserId", "KwAdId")
        ubp = kw_in.group_apply(
            ["UserId", "KwAdId"], lambda g: g.window(cfg.ubp_window).count(into="Count")
        ).exchange("UserId")
        acts_in = activities.exchange("UserId")
    else:
        ubp = (
            keywords.exchange("UserId")
            .group_apply(
                ["UserId", "KwAdId"],
                lambda g: g.window(cfg.ubp_window).count(into="Count"),
            )
        )
        acts_in = activities.exchange("UserId")
    return acts_in.temporal_join(ubp, on="UserId")


def _run(rows, plan, job_name):
    fs = DistributedFileSystem()
    fs.write("logs", rows)
    cluster = Cluster(fs=fs, cost_model=CostModel(num_machines=150))
    result = TiMR(cluster).run(plan, job_name=job_name, num_partitions=64)
    return result, cluster.cost_model


def test_example3_fragment_optimization(benchmark, clean_rows):
    rows = clean_rows
    outcome = {}

    def run_both():
        outcome["naive"] = _run(rows, _gen_train_plan("naive"), "naive")
        outcome["optimized"] = _run(rows, _gen_train_plan("optimized"), "opt")

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    naive_res, model = outcome["naive"]
    opt_res, _ = outcome["optimized"]
    naive_s = naive_res.report.simulated_seconds(model)
    opt_s = opt_res.report.simulated_seconds(model)

    print_table(
        "Example 3: GenTrainData annotation alternatives (150 machines)",
        ["plan", "fragments", "sim seconds", "speedup"],
        [
            ["{UserId,Keyword} -> {UserId} (naive)", len(naive_res.fragments), naive_s, 1.0],
            ["single {UserId} (optimized)", len(opt_res.fragments), opt_s, naive_s / opt_s],
        ],
    )

    # identical outputs, different cost
    naive_rows = sorted(map(sorted_items, naive_res.output_rows()))
    opt_rows = sorted(map(sorted_items, opt_res.output_rows()))
    assert naive_rows == opt_rows
    # the paper's 2.27x: optimized strictly faster (shape, not constant)
    assert opt_s < naive_s

    # the cost-based optimizer must choose the single-{UserId} plan itself
    from repro.timr import Statistics, annotate_plan, make_fragments

    cfg = BTConfig()
    src = Query.source("logs")
    keywords = src.where(lambda p: p["StreamId"] == 2)
    activities = src.where(lambda p: p["StreamId"] != 2).project(
        lambda p: {"UserId": p["UserId"], "AdId": p["KwAdId"]}
    )
    ubp = keywords.group_apply(
        ["UserId", "KwAdId"], lambda g: g.window(cfg.ubp_window).count(into="Count")
    )
    plan = activities.temporal_join(ubp, on="UserId").to_plan()
    stats = Statistics(
        source_rows={"logs": len(rows)},
        distinct_values={"UserId": 2000, "KwAdId": 5000},
    )
    chosen = annotate_plan(plan, stats)
    fragments = make_fragments(chosen.plan, "auto")
    # after folding stateless filter fragments into the map phase, the
    # optimizer's plan is a single {UserId} M-R stage
    from repro.timr.compile import fold_stateless_fragments

    kept, _plans = fold_stateless_fragments(fragments)
    assert len(kept) == 1
    assert kept[0].key == ("UserId",)


def sorted_items(row):
    return tuple(sorted(row.items()))
