"""Section V-D "Memory and Learning Time".

Paper: for the laptop ad class the raw sparse UBP averages 3.7 entries;
KE-1.28 drops it to 1.6 while F-Ex *grows* it to ~8 (each keyword maps
to up to 3 categories). LR learning for the diet ad takes 31 / 18 / 5
seconds for F-Ex / KE-1.28 / KE-2.56 — time tracks dimensionality.
"""

from repro.bt import FExSelector, KEZSelector, ModelTrainer, split_by_ad

from _tables import print_table

MEMORY_AD = "laptop"
LEARNING_AD = "dieting"


def _avg_entries(transform, ad, examples):
    sizes = [len(transform(ad, ex.features)) for ex in examples]
    return sum(sizes) / len(sizes) if sizes else 0.0


def test_memory_and_learning_time(benchmark, train_examples):
    by_ad = split_by_ad(train_examples)

    selectors = {
        "KE-1.28": KEZSelector(z_threshold=1.28),
        "KE-2.56": KEZSelector(z_threshold=2.56),
        "F-Ex": FExSelector(),
    }
    memory_rows = []
    learn_rows = []

    def run_all():
        raw = _avg_entries(lambda ad, f: f, MEMORY_AD, by_ad[MEMORY_AD])
        memory_rows.append(["raw UBP", f"{raw:.2f}"])
        for name, selector in selectors.items():
            selector.fit(train_examples)
            memory_rows.append(
                [
                    name,
                    f"{_avg_entries(selector.transform, MEMORY_AD, by_ad[MEMORY_AD]):.2f}",
                ]
            )
            model = ModelTrainer(seed=5).fit(
                LEARNING_AD, by_ad[LEARNING_AD], selector.transform
            )
            learn_rows.append(
                [
                    name,
                    model.stats.num_features,
                    f"{model.stats.learn_seconds * 1000:.1f}",
                    model.stats.iterations,
                ]
            )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_table(
        f"Section V-D: average UBP entries — {MEMORY_AD} ad",
        ["scheme", "avg entries / example"],
        memory_rows,
    )
    print_table(
        f"Section V-D: LR learning — {LEARNING_AD} ad",
        ["scheme", "dimensions", "learn (ms)", "IRLS iterations"],
        learn_rows,
    )

    mem = dict((r[0], float(r[1])) for r in memory_rows)
    # the paper's ordering: KE shrinks profiles, F-Ex grows them
    assert mem["KE-1.28"] < mem["raw UBP"]
    assert mem["KE-2.56"] <= mem["KE-1.28"]
    assert mem["F-Ex"] > mem["raw UBP"]

    learn = {r[0]: (r[1], float(r[2])) for r in learn_rows}
    # learning time tracks dimensionality: F-Ex slowest, KE-2.56 fastest dims
    assert learn["F-Ex"][0] > learn["KE-1.28"][0] >= learn["KE-2.56"][0]
    assert learn["F-Ex"][1] > learn["KE-2.56"][1]
