"""Figures 22-23: CTR lift vs coverage for the movies and dieting ads.

Paper: KE-z schemes (thresholds 1.28 / 2.56) deliver several times the
CTR lift of F-Ex and KE-pop at 0-20% coverage; KE-pop loses because it
ignores the correlation of keywords with clicks. Low coverage levels
matter most (many ad classes compete per impression opportunity).
"""

from repro.bt import (
    BTConfig,
    FExSelector,
    KEPopSelector,
    KEZSelector,
    ModelTrainer,
    ctr,
    lift_at_coverage,
    lift_coverage_curve,
    split_by_ad,
)

from _tables import print_table

AD_CLASSES = ["movies", "dieting"]
COVERAGES = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


def _evaluate(selector, train_by_ad, test_by_ad, ad):
    trainer = ModelTrainer(seed=11)
    model = trainer.fit(ad, train_by_ad[ad], selector.transform)
    test = test_by_ad[ad]
    scores = [model.predict_ctr(selector.transform(ad, ex.features)) for ex in test]
    return lift_coverage_curve([ex.y for ex in test], scores)


def test_fig22_23_ctr_vs_coverage(benchmark, train_examples, test_examples):
    train_by_ad = split_by_ad(train_examples)
    test_by_ad = split_by_ad(test_examples)

    selectors = {
        "KE-1.28": KEZSelector(z_threshold=1.28),
        "KE-2.56": KEZSelector(z_threshold=2.56),
        "F-Ex": FExSelector(),
        "KE-pop": KEPopSelector(top_n=50),
    }
    curves = {}

    def run_all():
        for name, selector in selectors.items():
            selector.fit(train_examples)
            for ad in AD_CLASSES:
                curves[(name, ad)] = _evaluate(selector, train_by_ad, test_by_ad, ad)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for figure, ad in zip((22, 23), AD_CLASSES):
        rows = []
        for cov in COVERAGES:
            rows.append(
                [f"{cov:.0%}"]
                + [f"{lift_at_coverage(curves[(n, ad)], cov):+.4f}" for n in selectors]
            )
        print_table(
            f"Figure {figure}: CTR lift vs coverage — {ad} ad "
            f"(test CTR {ctr(test_by_ad[ad]):.4f})",
            ["coverage"] + list(selectors),
            rows,
        )

    # the paper's headline: KE-z beats F-Ex and KE-pop at low coverage
    for ad in AD_CLASSES:
        kez = max(
            lift_at_coverage(curves[("KE-1.28", ad)], 0.1),
            lift_at_coverage(curves[("KE-2.56", ad)], 0.1),
        )
        assert kez > lift_at_coverage(curves[("F-Ex", ad)], 0.1)
        assert kez > lift_at_coverage(curves[("KE-pop", ad)], 0.1)
        assert kez > 0
