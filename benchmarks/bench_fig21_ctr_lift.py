"""Figure 21: keyword elimination and CTR — example-set lift table.

Paper: on test data, with keywords selected at |z| > 1.28 (80%
confidence), example sets containing positive-score keywords show large
positive CTR lift; sets with negative-score keywords show negative lift
(only slightly negative overall because negative examples dominate).
Reported for the laptop and cellphone ad classes.
"""

from repro.bt import KEZSelector, keyword_example_sets, split_by_ad

from _tables import print_table

AD_CLASSES = ["laptop", "cellphone"]


def test_fig21_ctr_lift_table(benchmark, train_examples, test_examples):
    selector = KEZSelector(z_threshold=1.28)
    result = benchmark.pedantic(
        lambda: selector.fit(train_examples), rounds=1, iterations=1
    )

    by_ad = split_by_ad(test_examples)
    for ad in AD_CLASSES:
        scores = result.scores.get(ad, {})
        positive = {k for k, z in scores.items() if z > 1.28}
        negative = {k for k, z in scores.items() if z < -1.28}
        rows = keyword_example_sets(by_ad.get(ad, []), positive, negative)
        print_table(
            f"Figure 21: keyword sets and CTR lift — {ad} ad",
            ["examples chosen", "#click", "#impr", "CTR", "lift (%)"],
            [
                [r.label, r.clicks, r.impressions, f"{r.ctr:.4f}", f"{r.lift_percent:+.0f}"]
                for r in rows
            ],
        )

        by_label = {r.label: r for r in rows}
        # the paper's ordering: positive keyword sets lift CTR strongly,
        # only-negative sets sit at or below the base CTR
        assert by_label[">=1 pos kw"].lift_percent > 20
        assert (
            by_label["Only pos kws"].lift_percent
            >= by_label[">=1 pos kw"].lift_percent * 0.5
        )
        if by_label["Only neg kws"].impressions > 50:
            assert (
                by_label["Only neg kws"].lift_percent
                < by_label[">=1 pos kw"].lift_percent
            )
